"""dmtlint AST rules: L1 (integer address arithmetic) and L2 (determinism).

L1 findings
-----------
* ``L101`` — true division (``/``) on an address-valued expression.
* ``L102`` — ``float()`` / ``math.pow()`` applied to an address-valued
  expression.
* ``L103`` — shift/mask with a magic page-geometry constant (``12``,
  ``21``, ``30``, ``0xFFF``, ``0x1FF``...) instead of a named constant
  from :mod:`repro.arch` (``PAGE_SHIFT``, ``PageSize.SIZE_2M``,
  ``level_index``, ``page_offset``...).

L2 findings
-----------
* ``L201`` — RNG constructed without an explicit seed
  (``np.random.default_rng()``, ``random.Random()``, ``random.seed()``).
* ``L202`` — call into a module-global RNG (``random.random()``,
  ``np.random.randint(...)``): global state defeats per-run seeding.
* ``L203`` — iteration over a ``set`` in a result-path file; Python sets
  iterate in hash order, which varies across runs/interpreters.
* ``L204`` — call to builtin ``hash()``: str/bytes hashes are salted by
  ``PYTHONHASHSEED``, so any value derived from one (an RNG seed, a
  bucket index) changes every interpreter run. Use ``zlib.crc32`` or
  ``hashlib`` for a stable digest.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set

from repro.analysis.lint.engine import FileContext, Rule, Violation

#: Identifier fragments (underscore-split, lowercased) that mark a value
#: as an address / frame number. "trace"/"unit" cover the vectorized
#: engine's VA arrays and 2MB-unit indices.
ADDRESS_TOKENS = frozenset({
    "va", "vas", "pa", "pas", "vpn", "vpns", "pfn", "pfns",
    "gpa", "gpas", "hpa", "hpas", "gva", "hva", "gfn", "gfns",
    "hfn", "l0pa", "l1pa", "l2pa", "addr", "addrs", "address",
    "addresses", "frame", "frames", "trace", "unit", "units",
})

#: Magic page-geometry constants L103 refuses in shift/mask positions.
#: 12/21/30 are the 4K/2M/1G page shifts; 9 is the per-level index
#: width; the masks are the matching ``(1 << n) - 1`` values.
MAGIC_GEOMETRY = frozenset({9, 12, 21, 30, 39, 48,
                            0x1FF, 0xFFF, 0x1FFFFF, 0x3FFFFFFF})

#: ``random`` module functions that use the hidden global RNG.
_STDLIB_GLOBAL_RNG = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "betavariate", "expovariate",
    "getrandbits", "randbytes", "triangular", "vonmisesvariate",
})

#: Legacy ``np.random.*`` functions backed by the global RandomState.
_NUMPY_GLOBAL_RNG = frozenset({
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "uniform", "normal",
    "standard_normal", "poisson", "exponential", "seed",
})


def _name_tokens(name: str) -> Set[str]:
    return set(name.lower().split("_"))


#: Calls whose result is a *count* even when the argument is an address
#: array — exempt from the int-domain requirement.
_COUNT_FUNCS = frozenset({"len", "sum", "min", "max", "id"})


def _address_mention(node: ast.AST) -> Optional[str]:
    """Return the first address-named identifier inside ``node``, if any.

    Subtrees under count-producing calls (``len(trace)``) are skipped:
    their value is a cardinality, not an address.
    """
    if isinstance(node, ast.Call) and _dotted(node.func) in _COUNT_FUNCS:
        return None
    name = None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.arg):
        name = node.arg
    if name and _name_tokens(name) & ADDRESS_TOKENS:
        return name
    for child in ast.iter_child_nodes(node):
        found = _address_mention(child)
        if found:
            return found
    return None


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted name of a call target (``np.random.default_rng``)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def _int_constant(node: ast.AST) -> Optional[int]:
    """The int value of a literal, looking through ``~x`` (mask inversion)."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Invert):
        node = node.operand
    if isinstance(node, ast.Constant) and isinstance(node.value, int) \
            and not isinstance(node.value, bool):
        return node.value
    return None


def _call_has_seed(node: ast.Call) -> bool:
    """True when the call passes any positional arg or a seed-like kwarg."""
    if node.args:
        return True
    return any(kw.arg in (None, "seed", "x", "a") for kw in node.keywords)


class L1AddressArithmetic(Rule):
    """Address math stays in the int domain, with named geometry constants."""

    family = "L1"
    scope = None  # applies everywhere

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        path = str(ctx.path)
        out: List[Violation] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp):
                if isinstance(node.op, ast.Div):
                    name = _address_mention(node.left) or _address_mention(node.right)
                    if name:
                        out.append(Violation(
                            "L101", path, node.lineno, node.col_offset,
                            f"true division on address-valued '{name}' leaves "
                            f"the int domain; use // or a shift",
                        ))
                elif isinstance(node.op, (ast.LShift, ast.RShift, ast.BitAnd)):
                    out.extend(self._check_magic(ctx, node, path))
            elif isinstance(node, ast.Call):
                out.extend(self._check_float_call(node, path))
        return out

    def _check_magic(self, ctx: FileContext, node: ast.BinOp,
                     path: str) -> Iterable[Violation]:
        for literal_side, other_side in ((node.right, node.left),
                                         (node.left, node.right)):
            value = _int_constant(literal_side)
            if value is None or value not in MAGIC_GEOMETRY:
                continue
            name = _address_mention(other_side)
            if not name:
                continue
            op = {ast.LShift: "<<", ast.RShift: ">>",
                  ast.BitAnd: "&"}[type(node.op)]
            yield Violation(
                "L103", path, node.lineno, node.col_offset,
                f"magic geometry constant {value:#x} in '{name} {op} ...'; "
                f"use a named constant/helper from repro.arch "
                f"(PAGE_SHIFT, PageSize, level_index, page_offset, ...)",
            )
            return

    def _check_float_call(self, node: ast.Call, path: str) -> Iterable[Violation]:
        dotted = _dotted(node.func)
        if dotted not in ("float", "math.pow", "np.float64", "numpy.float64"):
            return
        for arg in node.args:
            name = _address_mention(arg)
            if name:
                yield Violation(
                    "L102", path, node.lineno, node.col_offset,
                    f"{dotted}() on address-valued '{name}' leaves the int "
                    f"domain; addresses must stay integers",
                )
                return


class L2Determinism(Rule):
    """Seeded RNGs everywhere; no set iteration on the result path."""

    family = "L2"
    scope = None  # RNG checks global; set iteration gated on result-path

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        path = str(ctx.path)
        out: List[Violation] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                out.extend(self._check_rng(node, path))
        if "result-path" in ctx.scopes:
            out.extend(self._check_set_iteration(ctx, path))
        return out

    # -- RNG seeding ---------------------------------------------------- #

    def _check_rng(self, node: ast.Call, path: str) -> Iterable[Violation]:
        dotted = _dotted(node.func)
        if not dotted:
            return
        if dotted == "hash":
            yield Violation(
                "L204", path, node.lineno, node.col_offset,
                "builtin hash() is salted by PYTHONHASHSEED and varies "
                "across interpreter runs; use zlib.crc32/hashlib for a "
                "stable digest",
            )
            return
        head, _, last = dotted.rpartition(".")
        if last == "default_rng" and not _call_has_seed(node):
            yield Violation(
                "L201", path, node.lineno, node.col_offset,
                f"{dotted}() without an explicit seed is nondeterministic",
            )
        elif dotted in ("random.Random", "random.SystemRandom") \
                and not _call_has_seed(node):
            yield Violation(
                "L201", path, node.lineno, node.col_offset,
                f"{dotted}() without an explicit seed is nondeterministic",
            )
        elif dotted == "random.seed" and not _call_has_seed(node):
            yield Violation(
                "L201", path, node.lineno, node.col_offset,
                "random.seed() without an argument reseeds from the OS",
            )
        elif dotted.startswith("random.") and last in _STDLIB_GLOBAL_RNG:
            yield Violation(
                "L202", path, node.lineno, node.col_offset,
                f"{dotted}() uses the module-global RNG; construct a seeded "
                f"random.Random(seed) instead",
            )
        elif head in ("np.random", "numpy.random") and last in _NUMPY_GLOBAL_RNG:
            yield Violation(
                "L202", path, node.lineno, node.col_offset,
                f"{dotted}() uses the global RandomState; use "
                f"np.random.default_rng(seed)",
            )

    # -- set iteration --------------------------------------------------- #

    def _check_set_iteration(self, ctx: FileContext,
                             path: str) -> Iterable[Violation]:
        set_names = self._collect_set_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            iters: List[ast.AST] = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            elif isinstance(node, ast.Call) and _dotted(node.func) in ("list", "tuple"):
                # materializing a set into an ordered container is the
                # same hash-order hazard as iterating it directly
                iters.extend(node.args[:1])
            for it in iters:
                if self._is_setlike(it, set_names):
                    yield Violation(
                        "L203", path, it.lineno, it.col_offset,
                        "iteration over a set is hash-ordered and "
                        "nondeterministic on the result path; sort it first",
                    )

    @staticmethod
    def _collect_set_names(tree: ast.AST) -> Set[str]:
        """Names assigned a set-valued expression anywhere in the file."""
        names: Set[str] = set()
        for _ in range(2):  # second pass catches set-from-set assignments
            for node in ast.walk(tree):
                if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                    value = node.value
                    if value is None or not L2Determinism._is_setlike(value, names):
                        continue
                    targets = node.targets if isinstance(node, ast.Assign) \
                        else [node.target]
                    for target in targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
        return names

    @staticmethod
    def _is_setlike(node: ast.AST, set_names: Set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in set_names
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted in ("set", "frozenset"):
                return True
            # set methods that return sets: a.union(b), a.intersection(b)...
            _, _, last = dotted.rpartition(".")
            if last in ("union", "intersection", "difference",
                        "symmetric_difference"):
                base = node.func.value if isinstance(node.func, ast.Attribute) else None
                return base is not None and L2Determinism._is_setlike(base, set_names)
            return False
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Sub, ast.BitOr, ast.BitAnd, ast.BitXor)):
            return (L2Determinism._is_setlike(node.left, set_names)
                    or L2Determinism._is_setlike(node.right, set_names))
        return False
