"""dmtlint: simulator-invariant static analysis for this codebase.

A generic linter cannot know that virtual addresses must never enter the
float domain, that the miss-replay path must be deterministic, or that a
vectorized engine needs an oracle test for every public function. dmtlint
encodes exactly those repository-specific conventions as four rule
families (run as ``python -m repro lint`` and in CI):

* **L1 — integer address arithmetic**: VA/PA/VPN/PFN-valued expressions
  must stay in the int domain (no ``/``, ``float()``, ``math.pow``) and
  must shift/mask with named constants from :mod:`repro.arch`, not magic
  numbers.
* **L2 — determinism**: no unseeded RNGs anywhere; no iteration over
  ``set`` objects in the result paths (``sim/``, ``core/``,
  ``translation/``).
* **L3 — cost-model provenance**: every calibrated numeric constant in
  ``core/costs.py`` / ``sim/perfmodel.py`` must carry a paper-citation
  comment (``§..``, ``Table ..``, ``Fig ..`` or ``DESIGN.md``).
* **L4 — engine parity**: every public function of ``sim/tlb_vec.py``
  must be referenced by the oracle-equivalence test suite.

Violations can be locally waived with ``# dmtlint: ignore[L101]`` (or a
bare ``# dmtlint: ignore``); fixture files opt into scoped rules with a
``# dmtlint-scope: <scope>`` pragma. See DESIGN.md §7.
"""

from repro.analysis.lint.engine import (
    ALL_RULES,
    FileContext,
    LintConfig,
    Violation,
    lint_file,
    lint_paths,
    main,
)

__all__ = [
    "ALL_RULES",
    "FileContext",
    "LintConfig",
    "Violation",
    "lint_file",
    "lint_paths",
    "main",
]
