"""dmtlint: simulator-invariant static analysis for this codebase.

A generic linter cannot know that virtual addresses must never enter the
float domain, that the miss-replay path must be deterministic, or that a
vectorized engine needs an oracle test for every public function. dmtlint
encodes exactly those repository-specific conventions as six rule
families (run as ``python -m repro lint`` and in CI):

* **L1 — integer address arithmetic**: VA/PA/VPN/PFN-valued expressions
  must stay in the int domain (no ``/``, ``float()``, ``math.pow``) and
  must shift/mask with named constants from :mod:`repro.arch`, not magic
  numbers.
* **L2 — determinism**: no unseeded RNGs anywhere; no iteration over
  ``set`` objects in the result paths (``sim/``, ``core/``,
  ``translation/``).
* **L3 — cost-model provenance**: every calibrated numeric constant in
  ``core/costs.py`` / ``sim/perfmodel.py`` must carry a paper-citation
  comment (``§..``, ``Table ..``, ``Fig ..`` or ``DESIGN.md``).
* **L4 — engine parity**: every public function of ``sim/tlb_vec.py``
  must be referenced by the oracle-equivalence test suite.
* **L5 — address-domain dataflow**: an interprocedural pass
  (:mod:`repro.analysis.lint.domains`) infers which address domain
  (gva/gpa/hpa/vpn/pfn/frame/offset/cycles/bytes) every value lives in
  — seeded from naming conventions and ``# dmtlint-domain:``
  annotations — and flags cross-domain arithmetic (L501), arguments
  contradicting the callee's parameter domain (L502), and returns
  contradicting the function's declared domain (L503).
* **L6 — kernel nopython purity**: every ``@jit``-decorated kernel in
  ``sim/kernels/`` must stay inside the numba nopython-safe subset, so
  JIT compile breakage is caught without numba installed.

Violations can be locally waived with ``# dmtlint: ignore[L101]`` (or a
bare ``# dmtlint: ignore``); fixture files opt into scoped rules with a
``# dmtlint-scope: <scope>`` pragma. See DESIGN.md §7 and §12.
"""

from repro.analysis.lint.engine import (
    ALL_RULES,
    FileContext,
    LintConfig,
    ProgramRule,
    Violation,
    lint_file,
    lint_paths,
    main,
)

__all__ = [
    "ALL_RULES",
    "FileContext",
    "LintConfig",
    "ProgramRule",
    "Violation",
    "lint_file",
    "lint_paths",
    "main",
]
