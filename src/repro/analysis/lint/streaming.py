"""dmtlint L7: streaming hygiene — no whole-trace materialization.

The streaming stage-0→1 pipeline (DESIGN.md §13) exists so that a
multi-gigabyte trace never lives in memory at once: generators yield
fixed-size chunks, the TLB filter carries state across them, and miss
segments spill to disk. One careless ``np.concatenate(chunks)`` quietly
restores the monolithic footprint while every test still passes — the
results are bit-identical either way, so only memory telemetry (or this
rule) notices.

L7 findings
-----------
* ``L701`` — a materializing call (``np.concatenate``/``vstack``/
  ``hstack``/``stack``/``fromiter``, builtin ``list``/``tuple``) whose
  argument mentions a chunk/segment/piece-named value inside
  streaming-scoped code: it gathers the whole stream into memory.
* ``L702`` — ``.copy()`` / ``.tolist()`` on a chunk/segment-named
  expression: duplicates a chunk (or worse, boxes it into Python
  objects) instead of processing it in place.

Scope: ``streaming`` — the stage-0/1 streaming path (``sim/tlb_vec.py``,
``sim/machine.py``, ``sim/artifacts.py``, ``workloads/base.py``,
``workloads/generators.py``) or any file carrying the
``# dmtlint-scope: streaming`` pragma. Whole-stream assembly that is
deliberate (a bounded test, the final preallocated copy) is annotated
``# dmtlint: ignore[L701]`` at the call site.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from repro.analysis.lint.engine import FileContext, Rule, Violation

#: Identifier fragments (underscore-split, lowercased) that mark a value
#: as one chunk/segment of a stream, or the stream of them.
CHUNK_TOKENS = frozenset({
    "chunk", "chunks", "piece", "pieces", "segment", "segments",
    "seg", "segs", "stream", "streams",
})

#: Calls that gather an iterable of chunks into one in-memory object.
_MATERIALIZERS = frozenset({
    "np.concatenate", "numpy.concatenate", "np.vstack", "numpy.vstack",
    "np.hstack", "numpy.hstack", "np.stack", "numpy.stack",
    "np.fromiter", "numpy.fromiter", "np.append", "numpy.append",
    "list", "tuple",
})

#: Methods that duplicate a chunk (`copy`) or box it (`tolist`).
_DUPLICATORS = frozenset({"copy", "tolist"})


def _tokens(name: str) -> Set[str]:
    return set(name.lower().split("_"))


def _dotted(node: ast.AST) -> str:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def _chunk_mention(node: ast.AST) -> Optional[str]:
    """The first chunk-named identifier inside ``node``, if any."""
    name = None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.arg):
        name = node.arg
    if name and _tokens(name) & CHUNK_TOKENS:
        return name
    for child in ast.iter_child_nodes(node):
        found = _chunk_mention(child)
        if found:
            return found
    return None


class L7StreamingHygiene(Rule):
    """No whole-stream materialization inside streaming-scoped code."""

    family = "L7"
    scope = "streaming"

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        path = str(ctx.path)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted in _MATERIALIZERS:
                for arg in node.args:
                    name = _chunk_mention(arg)
                    if name:
                        yield Violation(
                            "L701", path, node.lineno, node.col_offset,
                            f"{dotted}() on chunk-valued '{name}' "
                            f"materializes the whole stream in memory; "
                            f"preallocate and fill per chunk, or process "
                            f"segments one at a time",
                        )
                        break
            elif isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _DUPLICATORS and not node.args:
                name = _chunk_mention(node.func.value)
                if name:
                    yield Violation(
                        "L702", path, node.lineno, node.col_offset,
                        f".{node.func.attr}() on chunk-valued '{name}' "
                        f"duplicates the chunk instead of processing it "
                        f"in place",
                    )
