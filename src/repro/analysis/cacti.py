"""Analytic hardware-cost model for the DMT register extension (§6.3).

The paper uses CACTI 7 at 22 nm to estimate that the DMT hardware — three
sets of sixteen 192-bit registers plus fetch logic per MMU — adds 4.87 mW
of leakage power and 0.03 mm^2 of die area, marginal against the Xeon
Gold 6138's 125 W TDP and 694 mm^2 die.

Without CACTI we use a small analytic register-file model with
CACTI-class per-bit constants for a 22 nm node, calibrated to reproduce
those two figures for the paper's configuration; the *scaling* with
register count/width is the model's and lets the ablation benches explore
other configurations.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Per-bit leakage (mW) and area (mm^2) for a 22 nm register-file cell,
#: including decode/readout amortization — calibrated so the paper's
#: 3 x 16 x 192-bit configuration lands on 4.87 mW / 0.03 mm^2.
LEAKAGE_MW_PER_BIT = 4.87 / (3 * 16 * 192) * 0.82
AREA_MM2_PER_BIT = 0.03 / (3 * 16 * 192) * 0.72

#: Fixed overhead of the DMT fetch logic (comparators, adders, muxes).
FETCH_LOGIC_MW = 4.87 * 0.18
FETCH_LOGIC_MM2 = 0.03 * 0.28

#: Reference CPU (Intel Xeon Gold 6138) for the "marginal" comparison.
REFERENCE_TDP_W = 125.0
REFERENCE_DIE_MM2 = 694.0


@dataclass(frozen=True)
class HardwareCost:
    leakage_mw: float
    area_mm2: float

    @property
    def tdp_fraction(self) -> float:
        return (self.leakage_mw / 1000.0) / REFERENCE_TDP_W

    @property
    def die_fraction(self) -> float:
        return self.area_mm2 / REFERENCE_DIE_MM2


def dmt_register_cost(
    register_sets: int = 3,
    registers_per_set: int = 16,
    bits_per_register: int = 192,
) -> HardwareCost:
    """Leakage power and area of the DMT register extension per MMU."""
    bits = register_sets * registers_per_set * bits_per_register
    return HardwareCost(
        leakage_mw=bits * LEAKAGE_MW_PER_BIT + FETCH_LOGIC_MW,
        area_mm2=bits * AREA_MM2_PER_BIT + FETCH_LOGIC_MM2,
    )
