"""VMA-characteristic analysis (Table 1 and Figure 5).

Three statistics per workload layout:

* **Total** — number of VMAs;
* **99% Cov.** — how many VMAs (largest first) cover 99% of mapped memory;
* **Clusters** — how many clusters of adjacent VMAs (merging neighbours
  while total bubbles stay below a 2% allowance) cover 99% of memory.

These are computed by the same clustering rule DMT-Linux uses at runtime
(§4.2.1), so Table 1 doubles as a validation of the mapping manager.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

Layout = Sequence[Tuple[int, int]]  # (start, end) per VMA, any order


@dataclass(frozen=True)
class VMAStats:
    total: int
    cov99: int
    clusters: int


def total_mapped(layout: Layout) -> int:
    return sum(end - start for start, end in layout)


def coverage_count(layout: Layout, fraction: float = 0.99) -> int:
    """VMAs needed (largest first) to cover ``fraction`` of mapped bytes."""
    sizes = sorted((end - start for start, end in layout), reverse=True)
    target = fraction * sum(sizes)
    covered = 0
    for count, size in enumerate(sizes, start=1):
        covered += size
        if covered >= target:
            return count
    return len(sizes)


def cluster_adjacent(layout: Layout, bubble_allowance: float = 0.02) -> List[Tuple[int, int, int]]:
    """Greedily cluster address-adjacent VMAs.

    A neighbour joins the current cluster if the cluster's total bubble
    ratio (gaps / span) stays within ``bubble_allowance``. Returns
    (start, end, covered_bytes) per cluster.
    """
    ordered = sorted(layout)
    clusters: List[List[int]] = []
    for start, end in ordered:
        if clusters:
            c_start, c_end, c_cov = clusters[-1]
            new_span = end - c_start
            new_cov = c_cov + (end - start)
            if new_span > 0 and 1.0 - new_cov / new_span <= bubble_allowance:
                clusters[-1] = [c_start, end, new_cov]
                continue
        clusters.append([start, end, end - start])
    return [tuple(c) for c in clusters]


def cluster_count(layout: Layout, fraction: float = 0.99,
                  bubble_allowance: float = 0.02) -> int:
    """Clusters (largest first) needed to cover ``fraction`` of memory."""
    clusters = cluster_adjacent(layout, bubble_allowance)
    covered_sizes = sorted((cov for _, _, cov in clusters), reverse=True)
    target = fraction * total_mapped(layout)
    covered = 0
    for count, size in enumerate(covered_sizes, start=1):
        covered += size
        if covered >= target:
            return count
    return len(covered_sizes)


def vma_stats(layout: Layout, fraction: float = 0.99,
              bubble_allowance: float = 0.02) -> VMAStats:
    return VMAStats(
        total=len(layout),
        cov99=coverage_count(layout, fraction),
        clusters=cluster_count(layout, fraction, bubble_allowance),
    )


def cdf(values: Iterable[int]) -> List[Tuple[int, float]]:
    """(value, cumulative fraction) pairs for Figure 5-style CDF plots."""
    ordered = sorted(values)
    n = len(ordered)
    return [(v, (i + 1) / n) for i, v in enumerate(ordered)]
