"""Analysis helpers: VMA statistics, hardware cost model, report rendering."""

from repro.analysis.cacti import HardwareCost, dmt_register_cost
from repro.analysis.export import read_csv, speedup_rows, write_csv, write_json
from repro.analysis.report import banner, format_cdf, format_series, format_table
from repro.analysis.vma_stats import (
    VMAStats,
    cdf,
    cluster_adjacent,
    cluster_count,
    coverage_count,
    total_mapped,
    vma_stats,
)

__all__ = [
    "HardwareCost",
    "dmt_register_cost",
    "read_csv",
    "speedup_rows",
    "write_csv",
    "write_json",
    "banner",
    "format_cdf",
    "format_series",
    "format_table",
    "VMAStats",
    "cdf",
    "cluster_adjacent",
    "cluster_count",
    "coverage_count",
    "total_mapped",
    "vma_stats",
]
