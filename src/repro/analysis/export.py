"""CSV/JSON export of experiment results.

The benchmark harness prints the paper's tables as text; downstream
plotting (regenerating the actual figures) wants machine-readable data.
These helpers write rows produced by the benches to CSV or JSON without
any third-party dependency.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Union

PathLike = Union[str, Path]


def write_csv(path: PathLike, headers: Sequence[str],
              rows: Iterable[Sequence[object]]) -> Path:
    """Write one table; returns the resolved path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(headers))
        for row in rows:
            writer.writerow(list(row))
    return target


def read_csv(path: PathLike) -> List[Dict[str, str]]:
    with Path(path).open() as handle:
        return list(csv.DictReader(handle))


def write_json(path: PathLike, data: object) -> Path:
    """Write a result object (dict of series, nested dicts, ...)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(data, indent=1, sort_keys=True))
    return target


def speedup_rows(results: Dict[str, Dict[str, float]],
                 baseline: str = "vanilla") -> List[List[object]]:
    """Turn {workload: {design: latency}} into speedup-over-baseline rows."""
    rows: List[List[object]] = []
    for workload, per_design in results.items():
        base = per_design.get(baseline)
        if not base:
            continue
        for design, latency in per_design.items():
            if design == baseline or not latency:
                continue
            rows.append([workload, design, base / latency])
    return rows
