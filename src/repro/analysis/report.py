"""Plain-text rendering of the paper's tables and figure series.

The benchmark harness prints every reproduced table/figure through these
helpers so ``pytest benchmarks/`` output can be compared line-by-line
against the paper (EXPERIMENTS.md records the correspondence).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
    float_fmt: str = "{:.2f}",
) -> str:
    """Fixed-width ASCII table."""
    rendered: List[List[str]] = []
    for row in rows:
        rendered.append([
            float_fmt.format(cell) if isinstance(cell, float) else str(cell)
            for cell in row
        ])
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    name: str,
    points: Dict[str, float],
    unit: str = "",
    float_fmt: str = "{:.2f}",
) -> str:
    """One figure series as 'name: key=value key=value ...'."""
    body = "  ".join(
        f"{key}={float_fmt.format(value)}{unit}" for key, value in points.items()
    )
    return f"{name}: {body}"


def format_cdf(name: str, cdf_points: Sequence[tuple], quantiles=(0.25, 0.5, 0.75, 0.9, 1.0)) -> str:
    """Summarize a CDF by its quantiles (Figure 5 rendering)."""
    if not cdf_points:
        return f"{name}: (empty)"
    parts = []
    for q in quantiles:
        value = next(v for v, frac in cdf_points if frac >= q)
        parts.append(f"p{int(q * 100)}={value}")
    return f"{name}: " + "  ".join(parts)


def banner(text: str) -> str:
    line = "=" * max(60, len(text) + 4)
    return f"\n{line}\n  {text}\n{line}"
