"""Runtime translation sanitizer (``--sanitize``).

dmtlint (the static half, :mod:`repro.analysis.lint`) checks conventions
the parser can see; this module checks the structural invariants that
only exist at run time. When enabled, light-weight hooks inside
``core/tea.py``, ``kernel/page_table.py``, ``hw/tlb.py``/``hw/pwc.py``
and the pvDMT/virt layers call into the probes below; when disabled
(the default) every hook is a single falsy-global test.

Invariants enforced
-------------------

* **TEA contiguity and alignment** — a TEA's VA span is granule-aligned
  and non-empty, its physical run is exactly ``npages`` frames starting
  at ``base_frame``, and after a migration every leaf table of the span
  sits at the frame DMT's register arithmetic predicts
  (:func:`check_tea`, :func:`check_tea_tables`).
* **PTE-to-frame range validity** — a leaf PTE never points a
  translation outside its memory domain, and huge-page frames are
  size-aligned (:func:`check_pte_target`).
* **No host-frame aliasing across guests in pvDMT** — a host frame
  mapped into one guest's physical space (gTEA backing) is never handed
  to a second guest of the same host memory domain
  (:func:`claim_frames` / :func:`release_frames`).
* **TLB/PWC coherence after unmap / relocation** — after a leaf PTE is
  cleared no registered TLB still holds the translation, and after a
  table relocation no registered page-walk cache still returns the old
  table's address (:func:`check_unmap_coherence`,
  :func:`check_relocate_coherence`). Structures participate by
  registering at construction (they do so automatically while the
  sanitizer is active); probes are non-mutating — no stats, no LRU
  reordering, no thinning credit.

Violations raise :class:`SanitizerError` (an ``AssertionError``
subclass, so ``pytest.raises(AssertionError)`` and plain ``assert``
habits both work).
"""

from __future__ import annotations

import weakref
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

from repro.arch import PAGE_SHIFT, PageSize, is_aligned

__all__ = [
    "SanitizerError",
    "enable",
    "disable",
    "reset",
    "active",
    "enabled",
    "register_tlb",
    "register_pwc",
    "check_tea",
    "check_tea_tables",
    "check_pte_target",
    "claim_frames",
    "release_frames",
    "check_unmap_coherence",
    "check_relocate_coherence",
]


class SanitizerError(AssertionError):
    """A runtime translation invariant was violated."""


_ACTIVE = False

#: Live TLB hierarchies / page-walk caches to probe for coherence.
_tlbs: List["weakref.ref"] = []
_pwcs: List["weakref.ref"] = []

#: Host-frame ownership per memory domain: domain key -> {frame: owner}.
#: The domain key is ``id(host PhysicalMemory)`` so nested setups (whose
#: L1 "host memory" is itself guest memory of L0) never cross-talk.
_frame_claims: Dict[int, Dict[int, int]] = {}


def enable() -> None:
    global _ACTIVE
    _ACTIVE = True


def disable() -> None:
    global _ACTIVE
    _ACTIVE = False


def reset() -> None:
    """Disable and drop all registrations/claims (test isolation)."""
    disable()
    _tlbs.clear()
    _pwcs.clear()
    _frame_claims.clear()


def active() -> bool:
    return _ACTIVE


@contextmanager
def enabled():
    """Run a block with the sanitizer on, restoring prior state after."""
    was = _ACTIVE
    enable()
    try:
        yield
    finally:
        if not was:
            reset()


# --------------------------------------------------------------------- #
# Structure registration (called from hw constructors while active)
# --------------------------------------------------------------------- #

def register_tlb(hierarchy) -> None:
    if _ACTIVE:
        _tlbs.append(weakref.ref(hierarchy))


def register_pwc(pwc) -> None:
    if _ACTIVE:
        _pwcs.append(weakref.ref(pwc))


def _live(refs: List["weakref.ref"]) -> list:
    alive = []
    dead = False
    for ref in refs:
        obj = ref()
        if obj is None:
            dead = True
        else:
            alive.append(obj)
    if dead:
        refs[:] = [ref for ref in refs if ref() is not None]
    return alive


# --------------------------------------------------------------------- #
# TEA invariants (hooked from core/tea.py)
# --------------------------------------------------------------------- #

def check_tea(tea, total_frames: Optional[int] = None) -> None:
    """Alignment + physical-run validity of one TEA."""
    if not _ACTIVE:
        return
    granule = tea.granule_bytes
    if tea.va_end <= tea.va_start:
        raise SanitizerError(f"{tea!r}: empty or inverted VA span")
    if not is_aligned(tea.va_start, granule) or not is_aligned(tea.va_end, granule):
        raise SanitizerError(
            f"{tea!r}: VA span not aligned to its {granule:#x}-byte granule"
        )
    if tea.base_frame < 0:
        raise SanitizerError(f"{tea!r}: negative base frame")
    if total_frames is not None and tea.base_frame + tea.npages > total_frames:
        raise SanitizerError(
            f"{tea!r}: physical run ends at frame "
            f"{tea.base_frame + tea.npages}, past the domain's "
            f"{total_frames} frames"
        )
    # The register arithmetic (Figure 7) must agree with the span.
    if tea.pte_addr(tea.va_start) != tea.base_frame << PAGE_SHIFT:
        raise SanitizerError(f"{tea!r}: pte_addr disagrees with base_frame")


def check_tea_tables(tea, page_table) -> None:
    """After migration: every leaf table of the span is inside the TEA.

    DMT registers compute PTE addresses with pure arithmetic over the
    TEA base (Figure 7); a leaf table left outside the contiguous run
    would make the fetcher read stale bytes while the radix walker reads
    fresh ones.
    """
    if not _ACTIVE or page_table is None:
        return
    shift = int(tea.page_size) + 9  # granule shift: 512 PTEs per table
    level = tea.page_size.leaf_level
    for granule in range(tea.va_start >> shift, tea.va_end >> shift):
        va = granule << shift
        frame = page_table.table_frame(va, level)
        if frame is None:
            continue
        want = tea.frame_for_table(va)
        if frame != want:
            raise SanitizerError(
                f"{tea!r}: leaf table for va {va:#x} at frame {frame}, "
                f"register arithmetic expects frame {want} "
                f"(non-contiguous TEA after migration)"
            )


# --------------------------------------------------------------------- #
# PTE range validity (hooked from kernel/page_table.py)
# --------------------------------------------------------------------- #

def check_pte_target(va: int, pfn: int, page_size: PageSize,
                     total_frames: int) -> None:
    """A mapped leaf PTE must stay inside its memory domain."""
    if not _ACTIVE:
        return
    span = page_size.bytes >> PAGE_SHIFT
    if pfn < 0 or pfn + span > total_frames:
        raise SanitizerError(
            f"PTE for va {va:#x} maps frames [{pfn}, {pfn + span}) outside "
            f"the domain's {total_frames} frames"
        )
    if not is_aligned(pfn, span):
        raise SanitizerError(
            f"PTE for va {va:#x}: {page_size.name} frame {pfn} is not "
            f"{span}-frame aligned"
        )


# --------------------------------------------------------------------- #
# pvDMT host-frame isolation (hooked from virt/ + core/paravirt.py)
# --------------------------------------------------------------------- #

def claim_frames(domain_key: int, base_frame: int, npages: int,
                 owner: int) -> None:
    """Record that ``owner`` (a VM id) backs ``npages`` host frames.

    Raises when any frame is already claimed by a *different* owner in
    the same host memory domain — host-frame aliasing across guests.
    """
    if not _ACTIVE:
        return
    claims = _frame_claims.setdefault(domain_key, {})
    for frame in range(base_frame, base_frame + npages):
        prior = claims.get(frame)
        if prior is not None and prior != owner:
            raise SanitizerError(
                f"host frame {frame} already backs guest {prior}, "
                f"refusing to alias it into guest {owner} (§4.5.2 isolation)"
            )
    for frame in range(base_frame, base_frame + npages):
        claims[frame] = owner


def release_frames(domain_key: int, base_frame: int, npages: int) -> None:
    if not _ACTIVE:
        return
    claims = _frame_claims.get(domain_key)
    if not claims:
        return
    for frame in range(base_frame, base_frame + npages):
        claims.pop(frame, None)


# --------------------------------------------------------------------- #
# TLB / PWC coherence (hooked from kernel/page_table.py)
# --------------------------------------------------------------------- #

def check_unmap_coherence(asid: int, va: int, page_size: PageSize) -> None:
    """After a leaf PTE is cleared, no registered TLB may still hit it.

    The simulator models shootdowns implicitly (filter and replay stages
    never interleave with unmaps); a stale hit here means a code path
    unmapped a page without invalidating live TLB state.
    """
    if not _ACTIVE:
        return
    for tlb in _live(_tlbs):
        if tlb.probe(asid, va, page_size):
            raise SanitizerError(
                f"stale TLB entry for asid {asid} va {va:#x} "
                f"({page_size.name}) after unmap — missing shootdown"
            )


def check_relocate_coherence(va: int, level: int, old_table_addr: int) -> None:
    """After a table relocation, no registered PWC may return the old
    table's address for this VA (it would walk freed memory)."""
    if not _ACTIVE:
        return
    for pwc in _live(_pwcs):
        cached = pwc.peek(va, level)
        if cached is not None and cached == old_table_addr:
            raise SanitizerError(
                f"PWC still caches old table {old_table_addr:#x} for va "
                f"{va:#x} level {level} after relocation — missing flush"
            )
