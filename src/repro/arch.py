"""x86-64 address-space constants and helpers.

This module centralizes the architectural facts the rest of the library
relies on: 4 KB base pages, 2 MB / 1 GB huge pages, 8-byte PTEs, 512-entry
page-table nodes, and 4- or 5-level radix trees (the paper evaluates 4-level
trees and discusses the 5-level extension in §2.1.1).

Addresses are plain Python integers. "VPN" always means the 4 KB-granule
virtual page number (``va >> 12``) unless a page size is given explicitly.
"""

from __future__ import annotations

import enum

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT

PTE_SIZE = 8
ENTRIES_PER_TABLE = 512
TABLE_INDEX_BITS = 9

#: Virtual-address bits translated by a 4-level tree (9*4 + 12).
VA_BITS_4LEVEL = 48
#: Virtual-address bits translated by a 5-level tree (9*5 + 12).
VA_BITS_5LEVEL = 57


class PageSize(enum.IntEnum):
    """Supported x86-64 page sizes.

    The integer value is the page-size shift, so ``1 << size`` is the page
    size in bytes. The enum also matches the 2-bit ``SZ`` field of a DMT
    register (Figure 13): 4 KB = 0, 2 MB = 1, 1 GB = 2 when encoded via
    :meth:`sz_field`.
    """

    SIZE_4K = 12
    SIZE_2M = 21
    SIZE_1G = 30

    @property
    def bytes(self) -> int:
        return 1 << int(self)

    @property
    def leaf_level(self) -> int:
        """Radix level whose entry is the leaf PTE for this page size.

        Level 1 is the last level of the tree (L1 in Figure 1); 2 MB pages
        terminate at L2 and 1 GB pages at L3.
        """
        return {12: 1, 21: 2, 30: 3}[int(self)]

    def sz_field(self) -> int:
        """Encode as the 2-bit SZ register field."""
        return {12: 0, 21: 1, 30: 2}[int(self)]

    @classmethod
    def from_sz_field(cls, sz: int) -> "PageSize":
        return {0: cls.SIZE_4K, 1: cls.SIZE_2M, 2: cls.SIZE_1G}[sz]


def level_shift(level: int) -> int:
    """Bit position where a radix level's index field starts.

    Level 1 indexes VA[20:12], level 2 VA[29:21], level 3 VA[38:30],
    level 4 VA[47:39], level 5 VA[56:48] (Figure 1).
    """
    if level < 1:
        raise ValueError(f"radix levels are 1-based, got {level}")
    return PAGE_SHIFT + TABLE_INDEX_BITS * (level - 1)


def level_index(va: int, level: int) -> int:
    """Index into the page-table node at ``level`` for virtual address ``va``."""
    return (va >> level_shift(level)) & (ENTRIES_PER_TABLE - 1)


def vpn_of(va: int, page_size: PageSize = PageSize.SIZE_4K) -> int:
    return va >> int(page_size)


def page_base(va: int, page_size: PageSize = PageSize.SIZE_4K) -> int:
    return va & ~(page_size.bytes - 1)


def page_offset(va: int, page_size: PageSize = PageSize.SIZE_4K) -> int:
    return va & (page_size.bytes - 1)


def align_up(value: int, alignment: int) -> int:
    return (value + alignment - 1) & ~(alignment - 1)


def align_down(value: int, alignment: int) -> int:
    return value & ~(alignment - 1)


def is_aligned(value: int, alignment: int) -> bool:
    return (value & (alignment - 1)) == 0


def pages_in(nbytes: int, page_size: PageSize = PageSize.SIZE_4K) -> int:
    """Number of pages of ``page_size`` needed to cover ``nbytes``."""
    return (nbytes + page_size.bytes - 1) >> int(page_size)


def canonicalize(va: int, va_bits: int = VA_BITS_4LEVEL) -> int:
    """Clamp a virtual address into the translatable range."""
    return va & ((1 << va_bits) - 1)
