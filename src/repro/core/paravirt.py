"""pvDMT: paravirtualized TEA allocation (§3.1, §4.5).

Under pvDMT the *host* allocates every guest TEA in host-contiguous
physical memory and maps it into the guest, so a nested translation needs
only two memory references (three for nested virtualization). The pieces:

* :class:`GTEATable` — the host-maintained, guest-read-only table listing
  each gTEA's base address in host physical memory and its size. The DMT
  fetcher resolves the register's gTEA ID through this table; a guest can
  therefore only ever point the MMU at its own TEAs (§4.5.2).
* :class:`PvDMTHost` — the ``KVM_HC_ALLOC_TEA`` handler: allocates
  host-contiguous frames (splitting when contiguity fails), maps them into
  guest-physical space and fills the gTEA table. For nested setups the
  handler forwards allocation upstream so even L2 TEAs are L0-contiguous
  (§4.5.3).
* :class:`PvTEAAllocator` — an allocator adapter that lets the guest's
  ordinary :class:`~repro.core.tea.TEAManager` obtain its TEAs through the
  hypercall instead of the guest buddy allocator.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from repro.analysis import sanitizer
from repro.arch import PAGE_SHIFT, PageSize
from repro.core.costs import ManagementLedger
from repro.mem.buddy import ContiguityError
from repro.virt.hypercall import (
    GTEAEntry,
    HypercallResult,
    TEARequest,
    hypercall_latency_us,
    tea_alloc_latency_ms,
)
from repro.virt.hypervisor import VM


class IsolationViolation(Exception):
    """A guest pointed the DMT fetcher outside its own TEAs (§4.5.2).

    Raised where real hardware would deliver a page fault to the host.
    """


class GTEATable:
    """Host-maintained table of a guest's TEAs (read-only to the guest)."""

    def __init__(self, vm: VM):
        self.vm = vm
        self._entries: Dict[int, GTEAEntry] = {}
        self._ids = itertools.count(0)
        # The table itself occupies host memory; its base address is part
        # of the guest register state (Figure 13).
        self.table_frame = vm.hypervisor.host_memory.allocator.alloc_pages(
            0, movable=False
        )

    @property
    def base_addr(self) -> int:
        return self.table_frame << PAGE_SHIFT

    def add(self, host_base_frame: int, npages: int, gpa_base: int,
            vma_base: int, page_size_shift: int = 12) -> GTEAEntry:
        entry = GTEAEntry(
            gtea_id=next(self._ids),
            host_base_frame=host_base_frame,
            npages=npages,
            gpa_base=gpa_base,
            vma_base=vma_base,
            page_size_shift=page_size_shift,
        )
        self._entries[entry.gtea_id] = entry
        return entry

    def remove(self, gtea_id: int) -> None:
        self._entries.pop(gtea_id, None)

    def get(self, gtea_id: Optional[int]) -> GTEAEntry:
        """Resolve a register's gTEA ID; invalid IDs fault to the host."""
        if gtea_id is None or gtea_id not in self._entries:
            raise IsolationViolation(f"invalid gTEA id {gtea_id!r}")
        return self._entries[gtea_id]

    def resolve_pte_addr(self, gtea_id: Optional[int], offset_bytes: int) -> int:
        """Host-physical PTE address for an offset into a gTEA.

        Bounds-checked: an out-of-range offset is a host page fault, never
        an access to other host memory (§4.5.2).
        """
        entry = self.get(gtea_id)
        if not 0 <= offset_bytes < (entry.npages << PAGE_SHIFT):
            raise IsolationViolation(
                f"offset {offset_bytes:#x} outside gTEA {entry.gtea_id} "
                f"({entry.npages} pages)"
            )
        return (entry.host_base_frame << PAGE_SHIFT) + offset_bytes

    def entries(self) -> List[GTEAEntry]:
        return list(self._entries.values())

    def find_by_gpa(self, gpa_base: int) -> Optional[GTEAEntry]:
        for entry in self._entries.values():
            if entry.gpa_base == gpa_base:
                return entry
        return None


class PvDMTHost:
    """The hypervisor side of pvDMT: ``KVM_HC_ALLOC_TEA`` handling."""

    def __init__(
        self,
        vm: VM,
        ledger: Optional[ManagementLedger] = None,
        upstream: Optional["PvTEAAllocator"] = None,
        nested: bool = False,
    ):
        self.vm = vm
        self.gtea_table = GTEATable(vm)
        self.ledger = ledger or ManagementLedger()
        #: In nested setups, the L1 handler forwards allocations to L0 via
        #: its own PvTEAAllocator so every TEA is L0-contiguous (§4.5.3).
        self.upstream = upstream
        self.nested = nested
        self.hypercalls = 0
        self.total_latency_us = 0.0

    def _alloc_host_contig(self, npages: int) -> tuple:
        """(local host frame, machine-level (L0) frame) for a TEA block."""
        if self.upstream is not None:
            local_frame, l0_frame = self.upstream.alloc_contig_chained(npages)
            return local_frame, l0_frame
        frame = self.vm.hypervisor.host_memory.allocator.alloc_contig(
            npages, movable=False
        )
        return frame, frame

    def handle_alloc_tea(self, requests: List[TEARequest]) -> HypercallResult:
        """Serve one ``KVM_HC_ALLOC_TEA`` hypercall (§4.5.1).

        Splits any request the contiguous allocator cannot satisfy as-is
        and returns the materialized gTEA array. One VM exit per call.
        """
        self.vm.exits.hypercalls += 1
        self.hypercalls += 1
        latency_us = hypercall_latency_us(nested=self.nested)
        entries: List[GTEAEntry] = []
        for request in requests:
            entries.extend(self._serve_one(request))
            latency_us += tea_alloc_latency_ms(
                request.npages << PAGE_SHIFT, nested=self.nested
            ) * 1000.0
        self.total_latency_us += latency_us
        self.ledger.record("tea_create", extra_us=latency_us, detail="hypercall")
        return HypercallResult(entries=entries, latency_us=latency_us)

    def _serve_one(self, request: TEARequest, offset_pages: int = 0) -> List[GTEAEntry]:
        npages = request.npages - offset_pages
        if npages <= 0:
            return []
        try:
            local_frame, l0_frame = self._alloc_host_contig(npages)
        except ContiguityError:
            if npages == 1:
                raise
            # the host splits the request when contiguity is unavailable
            half = npages // 2
            first = self._serve_one(
                TEARequest(request.vma_base, offset_pages + half,
                           request.page_size_shift),
                offset_pages,
            )
            rest = self._serve_one(request, offset_pages + half)
            return first + rest
        gpa_base = self.vm.map_host_frames(local_frame, npages)
        granule = 1 << (request.page_size_shift + 9)
        entry = self.gtea_table.add(
            host_base_frame=l0_frame,
            npages=npages,
            gpa_base=gpa_base,
            vma_base=request.vma_base + offset_pages * granule,
            page_size_shift=request.page_size_shift,
        )
        return [entry]


class PvTEAAllocator:
    """Allocator adapter: guest TEAs come from the hypercall, not the buddy.

    Duck-types the slice of the :class:`BuddyAllocator` interface that
    :class:`~repro.core.tea.TEAManager` uses, but every ``alloc_contig``
    issues ``KVM_HC_ALLOC_TEA``. Returned "frames" are guest-physical
    frames, already EPT-backed by host-contiguous memory, so the guest
    kernel's placement and PTE writes proceed without further VM exits.
    """

    def __init__(self, host_handler: PvDMTHost, page_size: PageSize = PageSize.SIZE_4K):
        self.host_handler = host_handler
        self.page_size = page_size
        self._entries_by_gfn: Dict[int, GTEAEntry] = {}
        self.stats = None  # TEAManager never touches allocator stats

    # -- TEAManager-facing interface ----------------------------------- #

    def alloc_contig(self, npages: int, movable: bool = False) -> int:
        result = self.host_handler.handle_alloc_tea(
            [TEARequest(vma_base=0, npages=npages,
                        page_size_shift=int(self.page_size))]
        )
        base_entry = result.entries[0]
        if len(result.entries) > 1:
            # Host split the area: the guest-side TEAManager expected one
            # block; report contiguity failure so it splits its mapping too
            # (both halves were mapped; free them and let retry occur).
            for entry in result.entries:
                self._release_entry(entry)
            raise ContiguityError(f"host split a {npages}-page gTEA request")
        gfn = base_entry.gpa_base >> PAGE_SHIFT
        self._entries_by_gfn[gfn] = base_entry
        return gfn

    def alloc_contig_chained(self, npages: int) -> tuple:
        """For nested forwarding: returns (local gfn, machine L0 frame)."""
        gfn = self.alloc_contig(npages)
        return gfn, self._entries_by_gfn[gfn].host_base_frame

    def free_contig(self, frame: int, npages: int) -> None:
        entry = self._entries_by_gfn.pop(frame, None)
        if entry is None:
            raise ValueError(f"gfn {frame} is not a gTEA base")
        self._release_entry(entry)

    def expand_contig(self, frame: int, npages: int, extra: int) -> bool:
        # In-place growth would require both host-physical and
        # guest-physical adjacency; the hypercall path always allocates a
        # fresh area and migrates (§4.5.1 forwards TEA ops to the host).
        return False

    def shrink_contig(self, frame: int, npages: int, new_npages: int) -> None:
        # Keep the host block; only the guest-side span shrinks. A real
        # implementation would notify the host; the waste is bounded and
        # accounted as TEA memory.
        return None

    def _release_entry(self, entry: GTEAEntry) -> None:
        self.host_handler.gtea_table.remove(entry.gtea_id)
        if self.host_handler.upstream is None:
            host_memory = self.host_handler.vm.hypervisor.host_memory
            host_memory.allocator.free_contig(
                entry.host_base_frame, entry.npages
            )
            if sanitizer.active():
                sanitizer.release_frames(id(host_memory),
                                         entry.host_base_frame, entry.npages)

    # -- pvDMT bookkeeping --------------------------------------------- #

    def gtea_id_for(self, base_gfn: int) -> Optional[int]:
        entry = self._entries_by_gfn.get(base_gfn)
        return entry.gtea_id if entry is not None else None
