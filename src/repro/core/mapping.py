"""VMA-to-TEA mapping management (§4.2).

The mapping manager keeps one *cluster* per mapped region: a VMA, or a
group of adjacent VMAs merged because the address bubbles between them are
below the configurable threshold ``t`` (2% by default, §4.2.1). Each
cluster owns one TEA per page size in use — possibly several after
contiguity-forced splits (§4.2.2).

Register selection follows the paper's policy: sort by size, store the
mappings that cover the largest regions in the 16 registers — large VMAs
(heap, mmapped files) cause virtually all page-table walks, while small
hot VMAs (libraries, stack) rarely miss the TLB (§4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.arch import PageSize
from repro.core.registers import DMTRegister, REGISTERS_PER_SET
from repro.core.tea import TEA, TEAManager, TEAMigration
from repro.kernel.page_table import RadixPageTable
from repro.kernel.vma import VMA
from repro.mem.buddy import ContiguityError

DEFAULT_BUBBLE_THRESHOLD = 0.02


@dataclass
class MappingCluster:
    """One VMA cluster and its TEAs."""

    va_start: int
    va_end: int
    covered_bytes: int                      # actual VMA bytes (excl. bubbles)
    vma_ids: List[int] = field(default_factory=list)
    teas: Dict[PageSize, List[TEA]] = field(default_factory=dict)

    @property
    def span(self) -> int:
        return self.va_end - self.va_start

    @property
    def bubble_ratio(self) -> float:
        return 1.0 - self.covered_bytes / self.span if self.span else 0.0

    def contains(self, va: int) -> bool:
        return self.va_start <= va < self.va_end

    def all_teas(self) -> List[TEA]:
        return [tea for teas in self.teas.values() for tea in teas]


class MappingManager:
    """Per-process VMA-to-TEA mapping state (maintained by DMT-Linux)."""

    def __init__(
        self,
        tea_manager: TEAManager,
        page_table: Optional[RadixPageTable] = None,
        bubble_threshold: float = DEFAULT_BUBBLE_THRESHOLD,
        register_count: int = REGISTERS_PER_SET,
        page_sizes: Optional[List[PageSize]] = None,
        tea_policy: str = "eager",
    ):
        #: "eager" creates each cluster's TEAs at mmap time; "lazy" defers
        #: to the placement policy's on-demand granule allocation (§7).
        self.tea_policy = tea_policy
        self.tea_manager = tea_manager
        self.page_table = page_table
        self.bubble_threshold = bubble_threshold
        self.register_count = register_count
        self.page_sizes = page_sizes or [PageSize.SIZE_4K]
        self.clusters: List[MappingCluster] = []
        self.pending_migrations: List[TEAMigration] = []
        self.merges = 0

    # ------------------------------------------------------------------ #
    # VMA event handling
    # ------------------------------------------------------------------ #

    def vma_created(self, vma: VMA) -> MappingCluster:
        """Create (or merge into) a mapping for a new VMA (§4.2.1)."""
        neighbor = self._mergeable_neighbor(vma)
        if neighbor is not None:
            return self._merge_into(neighbor, vma)
        cluster = MappingCluster(vma.start, vma.end, vma.size, [vma.vma_id])
        for size in self.page_sizes:
            cluster.teas[size] = [] if self.tea_policy == "lazy" else \
                self._create_teas(vma.start, vma.end, size)
        self.clusters.append(cluster)
        self.clusters.sort(key=lambda c: c.va_start)
        return cluster

    def vma_grown(self, vma: VMA) -> None:
        """Expand the covering cluster's TEAs after VMA growth (§4.2.3)."""
        cluster = self._cluster_containing(vma.start)
        if cluster is None:
            self.vma_created(vma)
            return
        grown = vma.end - cluster.va_end
        if grown <= 0:
            return
        cluster.covered_bytes += grown
        cluster.va_end = vma.end
        for size, teas in cluster.teas.items():
            if not teas:
                continue
            last = max(teas, key=lambda t: t.va_end)
            new_tea, migration = self.tea_manager.expand(
                last, vma.end, self.page_table
            )
            if migration is not None:
                teas.remove(last)
                teas.append(new_tea)
                self.pending_migrations.append(migration)
            elif new_tea is not last:
                teas.remove(last)
                teas.append(new_tea)

    def vma_shrunk(self, vma: VMA) -> None:
        cluster = self._cluster_containing(vma.start)
        if cluster is None:
            return
        shrunk = cluster.va_end - vma.end
        if shrunk <= 0:
            return
        cluster.covered_bytes = max(0, cluster.covered_bytes - shrunk)
        cluster.va_end = vma.end
        for teas in cluster.teas.values():
            for tea in list(teas):
                if tea.va_start >= vma.end:
                    self.tea_manager.delete(tea)
                    teas.remove(tea)
                elif tea.va_end > vma.end:
                    self.tea_manager.shrink(tea, vma.end)
                    if tea.tea_id not in self.tea_manager.teas:
                        teas.remove(tea)

    def vma_removed(self, vma: VMA) -> None:
        cluster = self._cluster_containing(vma.start)
        if cluster is None:
            return
        cluster.covered_bytes = max(0, cluster.covered_bytes - vma.size)
        if vma.vma_id in cluster.vma_ids:
            cluster.vma_ids.remove(vma.vma_id)
        if not cluster.vma_ids or cluster.covered_bytes == 0:
            for tea in cluster.all_teas():
                self.tea_manager.delete(tea)
            self.clusters.remove(cluster)

    # ------------------------------------------------------------------ #
    # Merging (§4.2.1)
    # ------------------------------------------------------------------ #

    def _mergeable_neighbor(self, vma: VMA) -> Optional[MappingCluster]:
        """The preceding cluster, if clustering keeps bubbles under ``t``."""
        best: Optional[MappingCluster] = None
        for cluster in self.clusters:
            if cluster.va_end <= vma.start and (
                best is None or cluster.va_end > best.va_end
            ):
                best = cluster
        if best is None:
            return None
        span = vma.end - best.va_start
        covered = best.covered_bytes + vma.size
        if span <= 0 or 1.0 - covered / span > self.bubble_threshold:
            return None
        return best

    def _merge_into(self, cluster: MappingCluster, vma: VMA) -> MappingCluster:
        self.merges += 1
        self.tea_manager.ledger.record("mapping_merge")
        cluster.vma_ids.append(vma.vma_id)
        cluster.covered_bytes += vma.size
        cluster.va_end = vma.end
        for size in self.page_sizes:
            teas = cluster.teas.setdefault(size, [])
            if not teas:
                if self.tea_policy != "lazy":
                    teas.extend(self._create_teas(cluster.va_start,
                                                  cluster.va_end, size))
                continue
            last = max(teas, key=lambda t: t.va_end)
            new_tea, migration = self.tea_manager.expand(last, vma.end, self.page_table)
            if migration is not None:
                teas.remove(last)
                teas.append(new_tea)
                self.pending_migrations.append(migration)
            elif new_tea is not last:
                teas.remove(last)
                teas.append(new_tea)
        return cluster

    def _create_teas(self, va_start: int, va_end: int, size: PageSize) -> List[TEA]:
        try:
            return self.tea_manager.create(va_start, va_end, size)
        except ContiguityError:
            # not even one granule of contiguous memory: no TEA, walks fall
            # back to the x86 walker for this region (§7)
            return []

    # ------------------------------------------------------------------ #
    # Migration upkeep
    # ------------------------------------------------------------------ #

    def run_migrations(self, tables_per_step: int = 1 << 30) -> int:
        """Advance pending migrations (the background worker, §4.3)."""
        moved = 0
        for migration in list(self.pending_migrations):
            moved += migration.step(tables_per_step)
            if migration.done:
                self.tea_manager.finish_migration(migration)
                self.pending_migrations.remove(migration)
        return moved

    # ------------------------------------------------------------------ #
    # Register file contents (§4.2)
    # ------------------------------------------------------------------ #

    def build_registers(
        self, gtea_ids: Optional[Dict[int, int]] = None
    ) -> List[DMTRegister]:
        """The up-to-16 mappings to load, largest VA coverage first.

        ``gtea_ids`` (pvDMT) maps TEA ids to gTEA-table indices; when given,
        registers carry the gTEA ID instead of relying on the TEA frame
        being a host-physical base.
        """
        candidates = []
        for cluster in self.clusters:
            for tea in cluster.all_teas():
                candidates.append(tea)
        if not candidates and self.tea_policy == "lazy":
            # lazy TEAs materialize outside the clusters' bookkeeping
            candidates = list(self.tea_manager.teas.values())
        candidates.sort(key=lambda tea: (tea.va_end - tea.va_start), reverse=True)
        registers = []
        for tea in candidates[: self.register_count]:
            shift = int(tea.page_size)
            registers.append(
                DMTRegister(
                    vma_base_vpn=tea.va_start >> shift,
                    tea_base_pfn=tea.base_frame,
                    vma_size_pages=(tea.va_end - tea.va_start) >> shift,
                    page_size=tea.page_size,
                    present=tea.present,
                    gtea_id=gtea_ids.get(tea.tea_id) if gtea_ids else None,
                )
            )
        self.tea_manager.ledger.record("register_reload")
        return registers

    def coverage(self, total_mapped_bytes: int) -> float:
        """Fraction of mapped bytes covered by the selected registers."""
        if not total_mapped_bytes:
            return 0.0
        selected = sorted(
            (tea for c in self.clusters for tea in c.all_teas()),
            key=lambda tea: tea.va_end - tea.va_start,
            reverse=True,
        )[: self.register_count]
        covered = sum(min(t.va_end, t.va_end) - t.va_start for t in selected)
        return min(1.0, covered / total_mapped_bytes)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _cluster_containing(self, va: int) -> Optional[MappingCluster]:
        for cluster in self.clusters:
            if cluster.contains(va):
                return cluster
        return None
