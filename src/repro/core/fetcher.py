"""The DMT fetcher: MMU-side translation logic (§4.1, §4.5, Figure 10).

On a TLB miss the fetcher checks the DMT registers; if a mapping covers
the address it computes the last-level PTE's physical address directly
(Figure 7) and fetches it — one reference natively, two with pvDMT in a
VM, three nested. When no register covers the address (or a mapping's
P-bit is clear during TEA migration) the request falls back to the x86
page walker.

The fetcher is pure hardware logic: it reads memory through injected
callbacks and reports every reference it makes, so the simulator can
charge each through the cache hierarchy. Callbacks:

* ``read_pte(host_addr)`` — return the 8-byte PTE at a host-physical
  address;
* ``fetch(host_addr, tag, group)`` — account one memory reference
  (parallel probes share a ``group`` id, §4.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.arch import PAGE_SHIFT, PageSize
from repro.core.paravirt import GTEATable
from repro.core.registers import DMTRegister, DMTRegisterFile, RegisterSet
from repro.kernel.page_table import PTE_HUGE, PTE_PRESENT, pte_frame
from repro.obs import metrics

ReadPTE = Callable[[int], int]
Fetch = Callable[[int, str, int], None]


@dataclass
class FetchResult:
    """Outcome of one DMT translation attempt."""

    pa: Optional[int] = None
    page_size: PageSize = PageSize.SIZE_4K
    fallback: bool = False        # no covering register: use the x86 walker
    fault: bool = False           # covered, but the PTE is not present
    references: int = 0           # sequential memory references performed


def _select_leaf(candidates: List[Tuple[DMTRegister, int]]) -> Optional[Tuple[DMTRegister, int]]:
    """Pick the one valid PTE among parallel per-size probes (§4.4).

    Only the TEA of the actual page size holds a present leaf entry: a 4 KB
    register must see a non-huge PTE and a huge-page register a PS-bit PTE.
    """
    for register, pte in candidates:
        if not pte & PTE_PRESENT:
            continue
        is_huge = bool(pte & PTE_HUGE)
        if is_huge == (register.page_size != PageSize.SIZE_4K):
            return register, pte
    return None


class DMTFetcher:
    """Per-core DMT fetch logic over a register file."""

    def __init__(self, register_file: DMTRegisterFile):
        self.register_file = register_file
        # Registered with the metrics registry; hits/fallbacks stay
        # read/write via the compatibility properties below (the batched
        # replay engine snapshots and restores them during planning).
        self._fallbacks_counter = metrics.counter("dmt.fetcher.fallbacks")
        self._hits_counter = metrics.counter("dmt.fetcher.hits")
        self._group = 0

    @property
    def hits(self) -> int:
        return self._hits_counter.value

    @hits.setter
    def hits(self, value: int) -> None:
        self._hits_counter.value = value

    @property
    def fallbacks(self) -> int:
        return self._fallbacks_counter.value

    @fallbacks.setter
    def fallbacks(self, value: int) -> None:
        self._fallbacks_counter.value = value

    def _next_group(self) -> int:
        self._group += 1
        return self._group

    # ------------------------------------------------------------------ #
    # Native translation: one reference (§3, Figure 7)
    # ------------------------------------------------------------------ #

    # dmtlint-domain: va=any -- the host dimension feeds gPAs through this path
    def translate_native(
        self,
        va: int,
        read_pte: ReadPTE,
        fetch: Fetch,
        which: RegisterSet = RegisterSet.NATIVE,
    ) -> FetchResult:
        probe = self._probe(which, va, read_pte, fetch, tag="PTE",
                            resolve_addr=None)
        if probe is None:
            self.fallbacks += 1
            return FetchResult(fallback=True)
        selected = _select_leaf(probe)
        if selected is None:
            return FetchResult(fault=True, references=1)
        register, pte = selected
        self.hits += 1
        size = register.page_size
        pa = (pte_frame(pte) << PAGE_SHIFT) + (va & (size.bytes - 1))
        return FetchResult(pa=pa, page_size=size, references=1)

    # dmtlint-domain: va=any -- the host dimension feeds gPAs through this path
    def _peek_native(self, va: int, read_pte: ReadPTE,
                     which: RegisterSet) -> Optional[int]:
        """Resolve ``va`` through a register set *without* charging fetches.

        Used to identify the winning candidate among parallel per-size
        probes before charging the critical path. Returns the physical
        address, or None when uncovered/unmapped.
        """
        for register in self.register_file.lookup(which, va):
            pte = read_pte(register.pte_addr(va))
            if not pte & PTE_PRESENT:
                continue
            is_huge = bool(pte & PTE_HUGE)
            if is_huge == (register.page_size != PageSize.SIZE_4K):
                from repro.kernel.page_table import pte_frame as _pf
                return (_pf(pte) << PAGE_SHIFT) + (va & (register.page_size.bytes - 1))
        return None

    def _probe(
        self,
        which: RegisterSet,
        va: int,
        read_pte: ReadPTE,
        fetch: Fetch,
        tag: str,
        resolve_addr: Optional[Callable[[DMTRegister, int], int]],
    ) -> Optional[List[Tuple[DMTRegister, int]]]:
        """Fetch the candidate leaf PTEs for ``va`` (one per page size).

        With multiple page-size TEAs the probes go out in parallel and the
        translation completes when the probe holding the valid leaf
        returns (§4.4: "only one PTE will be fetched" — only one TEA holds
        the actual translation); only that access is charged. On a full
        miss every probe must return before faulting, so the slowest one
        bounds latency (the probes share a group).
        """
        registers = self.register_file.lookup(which, va)
        if not registers:
            return None
        candidates = []
        for register in registers:
            if resolve_addr is not None:
                addr = resolve_addr(register, va)
            else:
                addr = register.pte_addr(va)
            candidates.append((register, read_pte(addr), addr))
        selected = _select_leaf([(reg, pte) for reg, pte, _ in candidates])
        group = self._next_group()
        if selected is None:
            for register, pte, addr in candidates:
                fetch(addr, tag, group)
        else:
            winner = selected[0]
            for register, pte, addr in candidates:
                if register is winner:
                    fetch(addr, tag, group)
        return [(reg, pte) for reg, pte, _ in candidates]

    # ------------------------------------------------------------------ #
    # pvDMT virtualized translation: two references (§3.1, §4.5.1)
    # ------------------------------------------------------------------ #

    def translate_virt_pv(
        self,
        gva: int,
        gtea_table: GTEATable,
        read_pte: ReadPTE,
        fetch: Fetch,
        guest_set: RegisterSet = RegisterSet.GUEST,
        host_set: RegisterSet = RegisterSet.NATIVE,
    ) -> FetchResult:
        """gVA -> hPA with host-contiguous gTEAs.

        Reference 1 fetches the gPTE: its host address comes from the gTEA
        table via the register's gTEA ID (the table lookup is register
        state, not a memory reference). Reference 2 fetches the hPTE that
        maps the resulting gPA.
        """

        def resolve(register: DMTRegister, va: int) -> int:
            offset = (va - register.vma_base) >> int(register.page_size)
            return gtea_table.resolve_pte_addr(register.gtea_id, offset * 8)

        probe = self._probe(guest_set, gva, read_pte, fetch, tag="gPTE",
                            resolve_addr=resolve)
        if probe is None:
            self.fallbacks += 1
            return FetchResult(fallback=True)
        selected = _select_leaf(probe)
        if selected is None:
            return FetchResult(fault=True, references=1)
        g_register, gpte = selected
        g_size = g_register.page_size
        gpa = (pte_frame(gpte) << PAGE_SHIFT) + (gva & (g_size.bytes - 1))

        host = self.translate_native(gpa, read_pte, fetch, which=host_set)
        if host.fallback or host.fault:
            return FetchResult(fallback=host.fallback, fault=host.fault,
                               references=1 + host.references)
        self.hits += 1
        return FetchResult(pa=host.pa, page_size=g_size,
                           references=1 + host.references)

    # ------------------------------------------------------------------ #
    # DMT (non-pv) virtualized translation: three references (§3.1)
    # ------------------------------------------------------------------ #

    def translate_virt(
        self,
        gva: int,
        read_pte: ReadPTE,
        fetch: Fetch,
        guest_set: RegisterSet = RegisterSet.GUEST,
        host_set: RegisterSet = RegisterSet.NATIVE,
    ) -> FetchResult:
        """gVA -> hPA without paravirtualization.

        The gVMA-to-gTEA mapping yields the *guest-physical* address of the
        gPTE; reference 1 fetches the hPTE mapping that gPA (to learn the
        gPTE's host address), reference 2 fetches the gPTE itself, and
        reference 3 fetches the hPTE of the data page.
        """
        g_registers = self.register_file.lookup(guest_set, gva)
        if not g_registers:
            self.fallbacks += 1
            return FetchResult(fallback=True)

        # Per-size candidates resolve in parallel; only the candidate that
        # holds the valid leaf is on the critical path (ref 1 fetches the
        # hPTE locating it, ref 2 fetches the gPTE itself). Peek at the
        # values first to identify the winner, then charge its chain.
        candidates = []
        for register in g_registers:
            gpte_gpa = register.pte_addr(gva)  # arithmetic only
            peek = self._peek_native(gpte_gpa, read_pte, host_set)
            if peek is None:
                continue
            candidates.append((register, read_pte(peek), gpte_gpa))
        if not candidates:
            # no host coverage for any candidate: the x86 walker takes over
            self.fallbacks += 1
            return FetchResult(fallback=True)
        selected = _select_leaf([(reg, pte) for reg, pte, _ in candidates])
        if selected is None:
            # genuine fault: the probes still cost one chain
            gpte_gpa = candidates[0][2]
            host = self.translate_native(gpte_gpa, read_pte, fetch,
                                         which=host_set)
            return FetchResult(fault=True, references=host.references + 1)
        g_register, gpte = selected
        gpte_gpa = next(gpa for reg, _, gpa in candidates if reg is g_register)
        host = self.translate_native(gpte_gpa, read_pte, fetch,
                                     which=host_set)
        if host.fallback or host.fault or host.pa is None:
            return FetchResult(fallback=host.fallback, fault=host.fault,
                               references=host.references)
        fetch(host.pa, "gPTE", self._next_group())
        refs = host.references + 1
        g_size = g_register.page_size
        gpa = (pte_frame(gpte) << PAGE_SHIFT) + (gva & (g_size.bytes - 1))

        host = self.translate_native(gpa, read_pte, fetch, which=host_set)
        if host.fallback or host.fault:
            return FetchResult(fallback=host.fallback, fault=host.fault,
                               references=refs + host.references)
        self.hits += 1
        return FetchResult(pa=host.pa, page_size=g_size,
                           references=refs + host.references)

    # ------------------------------------------------------------------ #
    # pvDMT nested translation: three references (§3.2, §4.5.3)
    # ------------------------------------------------------------------ #

    def translate_nested_pv(
        self,
        l2va: int,
        l2_gtea_table: GTEATable,
        l1_gtea_table: GTEATable,
        read_pte: ReadPTE,
        fetch: Fetch,
    ) -> FetchResult:
        """L2VA -> L0PA: L2PTE, then L1PTE, then L0PTE — all TEAs L0-contiguous."""

        def resolve_l2(register: DMTRegister, va: int) -> int:
            offset = (va - register.vma_base) >> int(register.page_size)
            return l2_gtea_table.resolve_pte_addr(register.gtea_id, offset * 8)

        probe = self._probe(RegisterSet.NESTED, l2va, read_pte, fetch,
                            tag="L2PTE", resolve_addr=resolve_l2)
        if probe is None:
            self.fallbacks += 1
            return FetchResult(fallback=True)
        selected = _select_leaf(probe)
        if selected is None:
            return FetchResult(fault=True, references=1)
        l2_register, l2pte = selected
        l2_size = l2_register.page_size
        l2pa = (pte_frame(l2pte) << PAGE_SHIFT) + (l2va & (l2_size.bytes - 1))

        def resolve_l1(register: DMTRegister, va: int) -> int:
            offset = (va - register.vma_base) >> int(register.page_size)
            return l1_gtea_table.resolve_pte_addr(register.gtea_id, offset * 8)

        probe = self._probe(RegisterSet.GUEST, l2pa, read_pte, fetch,
                            tag="L1PTE", resolve_addr=resolve_l1)
        if probe is None:
            self.fallbacks += 1
            return FetchResult(fallback=True, references=1)
        selected = _select_leaf(probe)
        if selected is None:
            return FetchResult(fault=True, references=2)
        l1_register, l1pte = selected
        l1pa = (pte_frame(l1pte) << PAGE_SHIFT) + (l2pa & (l1_register.page_size.bytes - 1))

        host = self.translate_native(l1pa, read_pte, fetch,
                                     which=RegisterSet.NATIVE)
        if host.fallback or host.fault:
            return FetchResult(fallback=host.fallback, fault=host.fault,
                               references=2 + host.references)
        self.hits += 1
        return FetchResult(pa=host.pa, page_size=l2_size,
                           references=2 + host.references)
