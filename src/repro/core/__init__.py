"""DMT core: the paper's contribution (registers, TEAs, fetcher, DMT-Linux)."""

from repro.core.costs import Environment, ManagementLedger
from repro.core.dmt_os import DMTLinux, DMTPlacementPolicy
from repro.core.fetcher import DMTFetcher, FetchResult
from repro.core.mapping import MappingCluster, MappingManager
from repro.core.paravirt import (
    GTEATable,
    IsolationViolation,
    PvDMTHost,
    PvTEAAllocator,
)
from repro.core.registers import (
    DMTRegister,
    DMTRegisterFile,
    REGISTERS_PER_SET,
    RegisterSet,
)
from repro.core.tea import TEA, TEAManager, TEAMigration, granule_shift

__all__ = [
    "Environment",
    "ManagementLedger",
    "DMTLinux",
    "DMTPlacementPolicy",
    "DMTFetcher",
    "FetchResult",
    "MappingCluster",
    "MappingManager",
    "GTEATable",
    "IsolationViolation",
    "PvDMTHost",
    "PvTEAAllocator",
    "DMTRegister",
    "DMTRegisterFile",
    "REGISTERS_PER_SET",
    "RegisterSet",
    "TEA",
    "TEAManager",
    "TEAMigration",
    "granule_shift",
]
