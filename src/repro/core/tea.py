"""Translation Entry Areas and their manager (§3, §4.3).

A TEA is a contiguous physical region holding the last-level PTEs of one
VMA (or VMA cluster), in virtual-address order. Because x86 groups 512
PTEs into one table page, a TEA is implemented as a contiguous run of
*leaf table pages*: one 4 KB page of TEA per 2 MB of VA for base pages
(level-1 tables), one per 1 GB of VA for 2 MB pages (level-2 tables).
The radix tree's parent entries point into the TEA, so the x86 walker and
the DMT fetcher read the *same* PTE bytes — no duplication, no extra TLB
shootdowns (§3).

The manager implements the paper's TEA life cycle:

* **create** via the contiguous allocator; on contiguity failure the
  request is **split** in half repeatedly (§4.2.2);
* **expand** in place when a VMA grows; otherwise allocate a new TEA and
  **migrate** gradually, with the mapping's P-bit cleared so translations
  fall back to the x86 walker until migration completes (§4.3, §4.6.1);
* **delete** on VMA removal.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis import sanitizer
from repro.arch import PAGE_SHIFT, PageSize, align_down, align_up
from repro.core.costs import OP_BASE_US, TEA_TOUCH_US_PER_MB, ManagementLedger
from repro.kernel.page_table import RadixPageTable
from repro.mem.buddy import BuddyAllocator, ContiguityError


def granule_shift(page_size: PageSize) -> int:
    """log2 of the VA bytes covered by one TEA page for this page size.

    One leaf table page holds 512 PTEs: 512 * 4 KB = 2 MB of VA for base
    pages, 512 * 2 MB = 1 GB for 2 MB pages.
    """
    return int(page_size) + 9


@dataclass
class TEA:
    """One contiguous run of leaf-table pages covering an aligned VA span."""

    tea_id: int
    page_size: PageSize
    va_start: int          # granule-aligned
    va_end: int            # granule-aligned
    base_frame: int
    present: bool = True   # cleared while this TEA is being migrated into

    @property
    def granule_bytes(self) -> int:
        return 1 << granule_shift(self.page_size)

    @property
    def npages(self) -> int:
        return (self.va_end - self.va_start) >> granule_shift(self.page_size)

    @property
    def nbytes(self) -> int:
        return self.npages << PAGE_SHIFT

    def covers(self, va: int) -> bool:
        return self.va_start <= va < self.va_end

    def frame_for_table(self, va: int) -> int:
        """TEA frame holding the leaf table covering ``va``."""
        if not self.covers(va):
            raise ValueError(f"va {va:#x} outside TEA span")
        index = (va - self.va_start) >> granule_shift(self.page_size)
        return self.base_frame + index

    def pte_addr(self, va: int) -> int:
        """Physical address of the last-level PTE for ``va`` (Figure 7)."""
        if not self.covers(va):
            raise ValueError(f"va {va:#x} outside TEA span")
        offset = (va - self.va_start) >> int(self.page_size)
        return (self.base_frame << PAGE_SHIFT) + offset * 8

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TEA#{self.tea_id}({self.page_size.name}, va {self.va_start:#x}-"
            f"{self.va_end:#x}, frames {self.base_frame}+{self.npages})"
        )


@dataclass
class TEAMigration:
    """Gradual migration of a TEA to a larger contiguous region (§4.3)."""

    source: TEA
    target: TEA
    page_table: Optional[RadixPageTable]
    pending: List[int] = field(default_factory=list)  # granule base VAs left to move

    @property
    def done(self) -> bool:
        return not self.pending

    def step(self, max_tables: int = 1) -> int:
        """Move up to ``max_tables`` leaf tables; the background worker."""
        moved = 0
        while self.pending and moved < max_tables:
            va = self.pending.pop()
            new_frame = self.target.frame_for_table(va)
            if self.page_table is not None and \
                    self.page_table.table_frame(va, self.target.page_size.leaf_level) is not None:
                self.page_table.relocate_table(
                    va, self.target.page_size.leaf_level, new_frame
                )
            moved += 1
        if self.done:
            self.target.present = True
        return moved

    def run_to_completion(self) -> int:
        return self.step(max_tables=len(self.pending) or 1)


class TEAManager:
    """Owns every TEA of one memory domain (one per kernel)."""

    def __init__(self, allocator: BuddyAllocator, ledger: Optional[ManagementLedger] = None):
        self.allocator = allocator
        self.ledger = ledger or ManagementLedger()
        self._ids = itertools.count(1)
        self.teas: Dict[int, TEA] = {}
        # granule ownership: (page_size, va >> granule_shift) -> TEA
        self._owner: Dict[Tuple[int, int], TEA] = {}
        self.splits = 0
        self.migrations = 0

    # ------------------------------------------------------------------ #
    # Creation / deletion
    # ------------------------------------------------------------------ #

    def create(self, va_start: int, va_end: int, page_size: PageSize) -> List[TEA]:
        """Allocate TEA(s) covering [va_start, va_end).

        Returns one TEA normally; several when contiguity forced splits
        (§4.2.2). The span is trimmed to granules not already owned by
        another TEA (shared boundary leaf tables stay where they are).
        """
        shift = granule_shift(page_size)
        start = align_down(va_start, 1 << shift)
        end = align_up(va_end, 1 << shift)
        key = int(page_size)
        while start < end and (key, start >> shift) in self._owner:
            start += 1 << shift
        while end > start and (key, (end - 1) >> shift) in self._owner:
            end -= 1 << shift
        if start >= end:
            return []
        return self._create_split(start, end, page_size)

    def _create_split(self, start: int, end: int, page_size: PageSize) -> List[TEA]:
        shift = granule_shift(page_size)
        npages = (end - start) >> shift
        try:
            base = self.allocator.alloc_contig(npages, movable=False)
        except ContiguityError:
            if npages == 1:
                raise
            # §4.2.2: split the mapping in two, each covering half the VMA,
            # and keep splitting until allocation succeeds.
            self.splits += 1
            self.ledger.record("tea_split")
            mid = start + ((npages // 2) << shift)
            return self._create_split(start, mid, page_size) + \
                self._create_split(mid, end, page_size)
        tea = TEA(next(self._ids), page_size, start, end, base)
        if sanitizer.active():
            sanitizer.check_tea(tea, getattr(self.allocator, "total_frames", None))
        self.teas[tea.tea_id] = tea
        for granule in range(start >> shift, end >> shift):
            self._owner[(int(page_size), granule)] = tea
        self.ledger.record(
            "tea_create",
            extra_us=(tea.nbytes / (1024 * 1024)) * TEA_TOUCH_US_PER_MB,
            detail=f"{tea.nbytes >> 10} KiB",
        )
        return [tea]

    def delete(self, tea: TEA) -> None:
        if tea.tea_id not in self.teas:
            raise KeyError(f"unknown TEA id {tea.tea_id}")
        self.allocator.free_contig(tea.base_frame, tea.npages)
        self._forget(tea)
        self.ledger.record("tea_delete")

    def _forget(self, tea: TEA) -> None:
        self.teas.pop(tea.tea_id, None)
        shift = granule_shift(tea.page_size)
        for granule in range(tea.va_start >> shift, tea.va_end >> shift):
            if self._owner.get((int(tea.page_size), granule)) is tea:
                self._owner.pop((int(tea.page_size), granule))

    # ------------------------------------------------------------------ #
    # Expansion / shrinking (§4.2.3, §4.3)
    # ------------------------------------------------------------------ #

    def expand(
        self,
        tea: TEA,
        new_va_end: int,
        page_table: Optional[RadixPageTable] = None,
    ) -> Tuple[TEA, Optional[TEAMigration]]:
        """Grow a TEA to cover up to ``new_va_end``.

        In-place expansion keeps the same TEA. Otherwise a new TEA is
        allocated and a :class:`TEAMigration` is returned; the new TEA's
        P-bit stays clear (translations fall back to the x86 walker) until
        the caller drives the migration to completion.
        """
        shift = granule_shift(tea.page_size)
        end = align_up(new_va_end, 1 << shift)
        if end <= tea.va_end:
            return tea, None
        extra = (end - tea.va_end) >> shift
        if self.allocator.expand_contig(tea.base_frame, tea.npages, extra):
            old_end = tea.va_end
            tea.va_end = end
            if sanitizer.active():
                sanitizer.check_tea(tea,
                                    getattr(self.allocator, "total_frames", None))
            for granule in range(old_end >> shift, end >> shift):
                self._owner[(int(tea.page_size), granule)] = tea
            self.ledger.record("tea_expand")
            return tea, None
        return self._expand_by_migration(tea, end, page_table)

    def _expand_by_migration(
        self, tea: TEA, end: int, page_table: Optional[RadixPageTable]
    ) -> Tuple[TEA, Optional[TEAMigration]]:
        shift = granule_shift(tea.page_size)
        npages = (end - tea.va_start) >> shift
        base = self.allocator.alloc_contig(npages, movable=False)
        target = TEA(next(self._ids), tea.page_size, tea.va_start, end, base,
                     present=False)
        self.teas[target.tea_id] = target
        pending = [
            granule << shift
            for granule in range(tea.va_start >> shift, tea.va_end >> shift)
        ]
        if sanitizer.active():
            sanitizer.check_tea(target,
                                getattr(self.allocator, "total_frames", None))
        migration = TEAMigration(tea, target, page_table, pending)
        self.migrations += 1
        self.ledger.record("tea_expand")
        self.ledger.record(
            "tea_migrate_page",
            extra_us=OP_BASE_US["tea_migrate_page"] * len(pending),
        )
        return target, migration

    def finish_migration(self, migration: TEAMigration) -> TEA:
        """Drive a migration to completion and retire the source TEA."""
        migration.run_to_completion()
        source, target = migration.source, migration.target
        shift = granule_shift(target.page_size)
        self.allocator.free_contig(source.base_frame, source.npages)
        self.teas.pop(source.tea_id, None)
        level = target.page_size.leaf_level
        for granule in range(target.va_start >> shift, target.va_end >> shift):
            self._owner[(int(target.page_size), granule)] = target
            # Leaf tables created outside the TEA while the migration was in
            # flight (the grown region, or new faults) are pulled in now so
            # the register arithmetic stays exact for the whole span.
            if migration.page_table is not None:
                va = granule << shift
                frame = migration.page_table.table_frame(va, level)
                want = target.frame_for_table(va)
                if frame is not None and frame != want:
                    old = migration.page_table.relocate_table(va, level, want)
                    if not self.owns_frame(old) and \
                            old != source.base_frame + (granule - (source.va_start >> shift)):
                        # scattered fallback tables came from the page
                        # table's own (buddy) allocator, not the TEA one
                        try:
                            migration.page_table.memory.allocator.free_pages(old)
                        except ValueError:
                            pass
        if sanitizer.active():
            sanitizer.check_tea(target,
                                getattr(self.allocator, "total_frames", None))
            sanitizer.check_tea_tables(target, migration.page_table)
        return target

    def shrink(self, tea: TEA, new_va_end: int) -> TEA:
        """Release the tail of a TEA when its VMA shrinks (§4.2.3)."""
        shift = granule_shift(tea.page_size)
        end = align_up(new_va_end, 1 << shift)
        if end >= tea.va_end:
            return tea
        if end <= tea.va_start:
            self.delete(tea)
            return tea
        old_npages = tea.npages
        drop = (tea.va_end - end) >> shift
        self.allocator.shrink_contig(tea.base_frame, old_npages, old_npages - drop)
        for granule in range(end >> shift, tea.va_end >> shift):
            self._owner.pop((int(tea.page_size), granule), None)
        tea.va_end = end
        if sanitizer.active():
            sanitizer.check_tea(tea, getattr(self.allocator, "total_frames", None))
        self.ledger.record("tea_delete", detail="shrink")
        return tea

    # ------------------------------------------------------------------ #
    # On-demand allocation (§7: "more advanced TEA allocation policies
    # can be employed, e.g., on-demand allocation of small-sized TEAs
    # with dynamic expansion")
    # ------------------------------------------------------------------ #

    def ensure_granule(self, va: int, page_size: PageSize) -> Optional[int]:
        """Lazy policy: own the granule covering ``va``, allocating at most
        one TEA page now.

        Tries, in order: an existing owner; in-place expansion of the TEA
        ending exactly at this granule (dynamic expansion keeps runs
        contiguous, so register coverage stays coarse); a fresh one-page
        TEA. Returns the frame for the leaf table, or None when even a
        single page cannot be allocated.
        """
        existing = self.owner_of(va, page_size)
        if existing is not None:
            return existing.frame_for_table(va)
        shift = granule_shift(page_size)
        gstart = align_down(va, 1 << shift)
        key = int(page_size)
        if gstart > 0:
            prev = self._owner.get((key, (gstart >> shift) - 1))
            if prev is not None and prev.va_end == gstart and \
                    self.allocator.expand_contig(prev.base_frame, prev.npages, 1):
                prev.va_end = gstart + (1 << shift)
                self._owner[(key, gstart >> shift)] = prev
                self.ledger.record("tea_expand", detail="on-demand")
                return prev.frame_for_table(va)
        try:
            tea = self._create_split(gstart, gstart + (1 << shift), page_size)[0]
        except ContiguityError:
            return None
        return tea.frame_for_table(va)

    # ------------------------------------------------------------------ #
    # Lookup used by the placement policy
    # ------------------------------------------------------------------ #

    def owner_of(self, va: int, page_size: PageSize) -> Optional[TEA]:
        return self._owner.get((int(page_size), va >> granule_shift(page_size)))

    def frame_for_table(self, va: int, page_size: PageSize) -> Optional[int]:
        tea = self.owner_of(va, page_size)
        if tea is None:
            return None
        return tea.frame_for_table(va)

    def owns_frame(self, frame: int) -> bool:
        return any(
            tea.base_frame <= frame < tea.base_frame + tea.npages
            for tea in self.teas.values()
        )

    def total_tea_bytes(self) -> int:
        return sum(tea.nbytes for tea in self.teas.values())
