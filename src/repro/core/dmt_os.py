"""DMT-Linux: the OS side of DMT (§4.2–§4.4, §4.6.2).

``DMTLinux`` attaches to a :class:`~repro.kernel.kernel.Kernel` and

* hooks VMA creation/adjustment/splitting to maintain VMA-to-TEA mappings
  (one :class:`~repro.core.mapping.MappingManager` per process);
* replaces the page-table allocator so last-level table pages land inside
  TEAs (:class:`DMTPlacementPolicy`);
* reloads the DMT register file on context switches;
* for virtualization, manages the mapping of each VM's guest-physical
  space (the single host VMA of §4.5) so EPT leaf tables live in host
  TEAs — the hVMA-to-hTEA mapping.

All management work is charged to a :class:`~repro.core.costs.ManagementLedger`
for the §6.3 overhead experiments.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.arch import PageSize
from repro.core.costs import Environment, ManagementLedger
from repro.core.mapping import MappingManager
from repro.core.registers import DMTRegister, DMTRegisterFile, RegisterSet
from repro.core.tea import TEAManager
from repro.kernel.kernel import Kernel
from repro.kernel.page_table import TablePlacementPolicy
from repro.kernel.process import Process
from repro.kernel.vma import VMA, VMAEvent
from repro.virt.hypervisor import VM

_LEVEL_TO_SIZE = {1: PageSize.SIZE_4K, 2: PageSize.SIZE_2M, 3: PageSize.SIZE_1G}


class DMTPlacementPolicy(TablePlacementPolicy):
    """Places last-level page-table pages at their TEA slots (§4.3).

    Radix level 1 tables hold 4 KB-page PTEs, level 2 tables hold 2 MB-page
    PTEs, level 3 tables 1 GB-page PTEs; each is directed to the TEA of the
    corresponding page size when one covers the address. Uncovered
    addresses (no TEA, migration in flight) fall back to the buddy
    allocator — the x86 walker handles them.
    """

    def __init__(self, tea_manager: TEAManager, on_demand: bool = False,
                 sizes: Optional[List[PageSize]] = None):
        self.tea_manager = tea_manager
        #: §7's lazy policy: TEAs materialize one granule at a time on the
        #: first leaf-table placement instead of eagerly at mmap time.
        self.on_demand = on_demand
        #: page sizes DMT manages TEAs for (4 KB always; 2 MB under THP).
        self.sizes = sizes or [PageSize.SIZE_4K]
        self.placed = 0
        self.fallback = 0

    def place_table(self, level: int, va: int, page_size: PageSize) -> Optional[int]:
        size = _LEVEL_TO_SIZE.get(level)
        if size is None:
            return None
        if self.on_demand and size in self.sizes:
            frame = self.tea_manager.ensure_granule(va, size)
        else:
            frame = self.tea_manager.frame_for_table(va, size)
        if frame is None:
            self.fallback += 1
        else:
            self.placed += 1
        return frame

    def table_released(self, frame: int, level: int, va: int) -> bool:
        return self.tea_manager.owns_frame(frame)


class DMTLinux:
    """DMT support compiled into one kernel (host or guest)."""

    def __init__(
        self,
        kernel: Kernel,
        register_set: RegisterSet = RegisterSet.NATIVE,
        register_file: Optional[DMTRegisterFile] = None,
        environment: Environment = Environment.NATIVE,
        bubble_threshold: float = 0.02,
        register_count: int = 16,
        tea_allocator=None,
        tea_policy: str = "eager",
    ):
        if tea_policy not in ("eager", "lazy"):
            raise ValueError("tea_policy must be 'eager' or 'lazy'")
        #: "eager" (the paper's default: TEAs for the whole VMA at mmap
        #: time) or "lazy" (§7: on-demand granules with dynamic expansion).
        self.tea_policy = tea_policy
        self.kernel = kernel
        #: When set (pvDMT guests), TEAs are allocated through this object
        #: (a PvTEAAllocator issuing KVM_HC_ALLOC_TEA) instead of the local
        #: buddy allocator.
        self.tea_allocator = tea_allocator
        self.register_set = register_set
        self.register_file = register_file or DMTRegisterFile(register_count)
        self.ledger = ManagementLedger(environment)
        self.bubble_threshold = bubble_threshold
        self.register_count = register_count
        self.mappings: Dict[int, MappingManager] = {}   # pid -> manager
        self.ept_mappings: Dict[int, MappingManager] = {}  # vm_id -> manager
        kernel.set_placement_factory(self._placement_for)
        kernel.add_context_switch_hook(self._on_context_switch)

    # ------------------------------------------------------------------ #
    # Process attachment
    # ------------------------------------------------------------------ #

    def _page_sizes(self) -> List[PageSize]:
        sizes = [PageSize.SIZE_4K]
        if self.kernel.thp_enabled:
            sizes.append(PageSize.SIZE_2M)
        return sizes

    def _placement_for(self, process: Process) -> TablePlacementPolicy:
        allocator = self.tea_allocator or self.kernel.memory.allocator
        tea_manager = TEAManager(allocator, self.ledger)
        manager = MappingManager(
            tea_manager,
            process.page_table,
            bubble_threshold=self.bubble_threshold,
            register_count=self.register_count,
            page_sizes=self._page_sizes(),
            tea_policy=self.tea_policy,
        )
        self.mappings[process.pid] = manager
        process.addr_space.add_hook(
            lambda event, vma, mgr=manager: self._on_vma_event(mgr, event, vma)
        )
        return DMTPlacementPolicy(tea_manager,
                                  on_demand=self.tea_policy == "lazy",
                                  sizes=self._page_sizes())

    def manager_for(self, process: Process) -> MappingManager:
        return self.mappings[process.pid]

    def _on_vma_event(self, manager: MappingManager, event: VMAEvent, vma: VMA) -> None:
        if event is VMAEvent.CREATED:
            manager.vma_created(vma)
        elif event is VMAEvent.GROWN:
            manager.vma_grown(vma)
        elif event is VMAEvent.SHRUNK:
            manager.vma_shrunk(vma)
        elif event is VMAEvent.REMOVED:
            manager.vma_removed(vma)
        # SPLIT keeps the cluster intact: the TEA already covers both halves.

    # ------------------------------------------------------------------ #
    # Register management (§4.1)
    # ------------------------------------------------------------------ #

    def _on_context_switch(self, process: Process) -> None:
        manager = self.mappings.get(process.pid)
        if manager is None:
            self.register_file.clear(self.register_set)
            return
        self.register_file.load(self.register_set, manager.build_registers())

    def reload_registers(self, process: Process,
                         gtea_ids: Optional[Dict[int, int]] = None) -> List[DMTRegister]:
        """Force a register reload reflecting current TEA state."""
        manager = self.mappings[process.pid]
        manager.run_migrations()
        if gtea_ids is None and self.tea_allocator is not None and \
                hasattr(self.tea_allocator, "gtea_id_for"):
            gtea_ids = {
                tea.tea_id: self.tea_allocator.gtea_id_for(tea.base_frame)
                for cluster in manager.clusters
                for tea in cluster.all_teas()
            }
        registers = manager.build_registers(gtea_ids)
        self.register_file.load(self.register_set, registers)
        return registers

    # ------------------------------------------------------------------ #
    # Host-side virtualization support (§4.5)
    # ------------------------------------------------------------------ #

    def attach_ept(self, vm: VM, host_thp: bool = False) -> MappingManager:
        """Manage a VM's EPT leaf tables in host TEAs.

        The guest-physical space is one host VMA (§4.5); its mapping covers
        [0, vm.memory_bytes) of gPA. Must be called before the EPT is
        populated so leaf tables land inside the TEA.
        """
        allocator = self.tea_allocator or self.kernel.memory.allocator
        tea_manager = TEAManager(allocator, self.ledger)
        sizes = [PageSize.SIZE_4K] + ([PageSize.SIZE_2M] if host_thp else [])
        manager = MappingManager(
            tea_manager,
            vm.ept,
            bubble_threshold=self.bubble_threshold,
            register_count=self.register_count,
            page_sizes=sizes,
        )
        manager.vma_created(vm.gpa_space_vma())
        vm.ept.placement = DMTPlacementPolicy(tea_manager)
        self.ept_mappings[vm.vm_id] = manager
        return manager

    def host_registers_for_vm(self, vm: VM) -> List[DMTRegister]:
        manager = self.ept_mappings[vm.vm_id]
        manager.run_migrations()
        return manager.build_registers()

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #

    def management_ms(self) -> float:
        return self.ledger.total_ms
