"""DMT registers: the per-core VMA-to-TEA mapping state (Figure 13, §4.1).

Each register packs a VMA-to-TEA mapping into 192 bits:

* ``VMA Base VPN`` — virtual page number of the mapped region's base;
* ``TEA Base PFN`` — physical frame of the TEA holding its last-level PTEs;
* ``VMA Size`` — region size in pages of the mapping's page size;
* ``SZ`` — 2-bit page-size code (4 KB / 2 MB / 1 GB, §4.4);
* ``P`` — present bit; cleared during TEA migration so translation falls
  back to the x86 walker (§4.6.1);
* ``gTEA ID`` — pvDMT only: index into the host-maintained gTEA table.

A core has three sets of 16 registers — native, guest, and nested — each
usable only by its own virtualization level (§4.6.1). Registers are part
of the task state: the OS reloads them on context switches.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.arch import PAGE_SHIFT, PageSize

REGISTERS_PER_SET = 16

# --- 192-bit packed layout ------------------------------------------------
_VPN_BITS = 52        # word 0: VMA base VPN (page-size granules)
_PFN_BITS = 52        # word 1: TEA base PFN
_SIZE_BITS = 44       # word 2[43:0]:   VMA size in pages of SZ granularity
_GTEA_ID_BITS = 12    # word 2[55:44]:  gTEA ID
_SZ_SHIFT = 56        # word 2[57:56]:  SZ field
_P_SHIFT = 58         # word 2[58]:     present bit


class RegisterSet(enum.Enum):
    """Which of the three per-core register sets a mapping lives in."""

    NATIVE = "native"
    GUEST = "guest"
    NESTED = "nested"


@dataclass(frozen=True)
class DMTRegister:
    """One decoded VMA-to-TEA mapping register."""

    vma_base_vpn: int          # in units of the mapping's page size
    tea_base_pfn: int          # 4 KB frame number of the TEA base
    vma_size_pages: int        # in units of the mapping's page size
    page_size: PageSize = PageSize.SIZE_4K
    present: bool = True
    gtea_id: Optional[int] = None   # pvDMT: index into the gTEA table

    # ------------------------------------------------------------------ #
    # Encoding (Figure 13)
    # ------------------------------------------------------------------ #

    def encode(self) -> int:
        """Pack into the 192-bit architectural format."""
        if self.vma_base_vpn >= 1 << _VPN_BITS:
            raise ValueError("VMA base VPN overflows the register field")
        if self.tea_base_pfn >= 1 << _PFN_BITS:
            raise ValueError("TEA base PFN overflows the register field")
        if self.vma_size_pages >= 1 << _SIZE_BITS:
            raise ValueError("VMA size overflows the register field")
        word0 = self.vma_base_vpn
        word1 = self.tea_base_pfn
        word2 = self.vma_size_pages
        word2 |= (self.gtea_id if self.gtea_id is not None else 0) << _SIZE_BITS
        word2 |= self.page_size.sz_field() << _SZ_SHIFT
        word2 |= int(self.present) << _P_SHIFT
        return word0 | (word1 << 64) | (word2 << 128)

    @classmethod
    def decode(cls, raw: int, paravirt: bool = False) -> "DMTRegister":
        word0 = raw & ((1 << 64) - 1)
        word1 = (raw >> 64) & ((1 << 64) - 1)
        word2 = raw >> 128
        gtea_id = (word2 >> _SIZE_BITS) & ((1 << _GTEA_ID_BITS) - 1)
        return cls(
            vma_base_vpn=word0,
            tea_base_pfn=word1,
            vma_size_pages=word2 & ((1 << _SIZE_BITS) - 1),
            page_size=PageSize.from_sz_field((word2 >> _SZ_SHIFT) & 0x3),
            present=bool((word2 >> _P_SHIFT) & 1),
            gtea_id=gtea_id if paravirt else None,
        )

    # ------------------------------------------------------------------ #
    # Translation arithmetic (Figure 7)
    # ------------------------------------------------------------------ #

    @property
    def vma_base(self) -> int:
        return self.vma_base_vpn << int(self.page_size)

    @property
    def vma_end(self) -> int:
        return (self.vma_base_vpn + self.vma_size_pages) << int(self.page_size)

    def covers(self, va: int) -> bool:
        return self.vma_base <= va < self.vma_end

    def pte_addr(self, va: int, tea_base_addr: Optional[int] = None) -> int:
        """Physical address of the last-level PTE for ``va``.

        Step 1 of Figure 7 computes the VPN offset inside the VMA; step 2
        indexes the TEA by that offset (8 bytes per PTE). ``tea_base_addr``
        overrides the register's TEA base — pvDMT passes the host base
        looked up in the gTEA table.
        """
        if not self.covers(va):
            raise ValueError(f"va {va:#x} outside register range")
        offset = (va - self.vma_base) >> int(self.page_size)
        base = tea_base_addr if tea_base_addr is not None \
            else self.tea_base_pfn << PAGE_SHIFT
        return base + offset * 8


class DMTRegisterFile:
    """The three per-core sets of 16 registers.

    ``lookup`` returns every present mapping covering an address: a VMA
    backed by several page sizes has one register per size and the fetcher
    probes all of them in parallel (§4.4).
    """

    def __init__(self, registers_per_set: int = REGISTERS_PER_SET):
        self.registers_per_set = registers_per_set
        self._sets: Dict[RegisterSet, List[Optional[DMTRegister]]] = {
            rs: [None] * registers_per_set for rs in RegisterSet
        }
        #: pvDMT: base host-physical address of the gTEA table for the
        #: currently running guest (part of the register state, Fig. 13).
        self.gtea_table_base: Optional[int] = None
        self.reloads = 0

    def load(self, which: RegisterSet, registers: List[DMTRegister]) -> None:
        """Reload a whole set (context switch / VM entry, §4.1)."""
        if len(registers) > self.registers_per_set:
            raise ValueError(
                f"{len(registers)} mappings exceed the {self.registers_per_set}-register set"
            )
        slots: List[Optional[DMTRegister]] = [None] * self.registers_per_set
        slots[: len(registers)] = registers
        self._sets[which] = slots
        self.reloads += 1

    def clear(self, which: RegisterSet) -> None:
        self._sets[which] = [None] * self.registers_per_set

    def registers(self, which: RegisterSet) -> List[DMTRegister]:
        return [reg for reg in self._sets[which] if reg is not None]

    def lookup(self, which: RegisterSet, va: int) -> List[DMTRegister]:
        return [
            reg
            for reg in self._sets[which]
            if reg is not None and reg.present and reg.covers(va)
        ]

    def covered(self, which: RegisterSet, va: int) -> bool:
        return bool(self.lookup(which, va))
