"""Modeled costs of DMT's OS-side management work (§6.3).

DMT trades infrequent VMA/TEA management for cheap translations; the paper
quantifies the management side on a real, deliberately fragmented machine.
We model each management operation with a calibrated latency and accumulate
them in a ledger so the §6.3 overhead experiment can report totals.

Calibration anchors (from §6.3):

* TEA allocation: 13.27 / 23.73 / 48.07 ms for 50 / 100 / 200 MB in a VM —
  a linear fit gives ~1.8 ms base + ~0.232 ms/MB (see
  :mod:`repro.virt.hypercall`).
* Bare hypercall: 1.88 us single-level, 10.75 us nested.
* End-to-end management totals for Redis (the heaviest workload): ~12 ms
  native, ~120 ms virtualized, ~598 ms nested — environment multipliers of
  roughly 1x / 10x / 50x over native management cost.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List

#: Version of the calibrated cost model (management-op bases, cache/TLB
#: latencies, walk-cost accounting). Bump on ANY change that can alter
#: replayed cycle counts: the stage-2 result cache folds this constant
#: into its content-addressed key, so stale cached cells are never
#: served across a cost-model change.
COST_MODEL_VERSION = 1

#: Fixed CPU cost of bookkeeping per management op, microseconds.
#: Anchored to the §6.3 management-overhead measurements: the per-op bases
#: are back-fitted so Redis's op mix reproduces §6.3's ~12 ms native total.
OP_BASE_US = {
    "tea_create": 120.0,       # §6.3 fit: VMA bookkeeping + buddy call
    "tea_delete": 40.0,        # §6.3 fit: teardown is ~1/3 of create
    "tea_expand": 80.0,        # §6.3 fit: in-place growth, no migration
    "tea_split": 100.0,        # §6.3 fit: split on contiguity failure
    "mapping_merge": 90.0,     # §6.3 fit: VMA merge path
    "tea_migrate_page": 3.0,   # per 4 KB of PTEs moved (§6.3 migration slope)
    "register_reload": 0.4,    # §6.2 fit: on-fault register-file refill
    "defrag": 900.0,           # §6.3 fit: compaction episode amortized
}

#: Per-MB cost of zeroing/placing the PTE pages of a freshly created TEA.
#: Slope of the §6.3 TEA-allocation fit (13.27/23.73/48.07 ms at
#: 50/100/200 MB), scaled from VM to native by the environment multiplier.
TEA_TOUCH_US_PER_MB = 55.0


class Environment(enum.Enum):
    """Where management work runs; deeper virtualization costs more.

    Multipliers from the §6.3 end-to-end Redis totals: ~12 ms native,
    ~120 ms virtualized, ~598 ms nested — 1x / 10x / 50x.
    """

    NATIVE = 1.0
    VIRTUALIZED = 10.0
    NESTED = 50.0          # §6.3: 598/12 rounded to the paper's "~50x"


@dataclass
class LedgerEntry:
    op: str
    micros: float
    detail: str = ""


@dataclass
class ManagementLedger:
    """Accumulates modeled DMT-Linux management time."""

    environment: Environment = Environment.NATIVE
    entries: List[LedgerEntry] = field(default_factory=list)

    def record(self, op: str, extra_us: float = 0.0, detail: str = "") -> float:
        base = OP_BASE_US.get(op, 0.0)
        micros = (base + extra_us) * self.environment.value
        self.entries.append(LedgerEntry(op, micros, detail))
        return micros

    @property
    def total_us(self) -> float:
        return sum(entry.micros for entry in self.entries)

    @property
    def total_ms(self) -> float:
        return self.total_us / 1000.0

    def by_op(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for entry in self.entries:
            totals[entry.op] = totals.get(entry.op, 0.0) + entry.micros
        return totals
