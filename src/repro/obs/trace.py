"""Trace spans: nested wall-time + peak-RSS telemetry as JSONL events.

``span("stage1.tlb_filter")`` opens a context manager; on exit one JSON
line is appended to the trace file with the span's name, wall-clock
duration, peak-RSS delta, process id, and parent/child linkage
(``span_id`` / ``parent_id`` / ``depth`` via a per-process span stack).
The context manager yields a dict; keys added to it during the block are
merged into the event, so callers can attach results (walk counts, miss
counts) discovered mid-span.

Tracing is off by default and :func:`span` is then a cheap no-op that
yields ``None`` — instrumented code guards post-attrs with
``if sp is not None``. ``enable(path)`` opens the stream (append mode;
idempotent for the same path so pool workers can re-enter per task), and
``disable()`` flushes and closes it. Each event is written and flushed
as one line, so several worker processes can append to the same file;
children close before their parents, so child events precede parent
events in the stream.

Stream ownership is cooperative: :func:`active` reports whether a
stream is already open, and code that would open one on a caller's
behalf (``run_sweep``, the job scheduler's ``job.run`` span) checks it
first and only calls :func:`disable` on streams it opened itself, so a
caller-enabled trace survives the call.
"""

from __future__ import annotations

import json
import os
import resource
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional


def peak_rss_kb() -> int:
    """This process's peak resident set size in KiB (Linux ru_maxrss)."""
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


class Tracer:
    """One open JSONL span stream plus the process-local span stack."""

    def __init__(self, path: str):
        self.path = path
        self._handle = open(path, "a", encoding="utf-8")
        self._stack = []
        self._next_id = 1

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Dict[str, object]]:
        span_id = self._next_id
        self._next_id += 1
        parent_id = self._stack[-1] if self._stack else None
        depth = len(self._stack)
        self._stack.append(span_id)
        extra: Dict[str, object] = {}
        rss_before = peak_rss_kb()
        started_unix = time.time()
        started = time.perf_counter()
        try:
            yield extra
        finally:
            seconds = time.perf_counter() - started
            self._stack.pop()
            event = dict(attrs)
            event.update(extra)
            event.update(
                name=name,
                span_id=span_id,
                parent_id=parent_id,
                depth=depth,
                pid=os.getpid(),
                start_unix=started_unix,
                seconds=seconds,
                rss_delta_kb=peak_rss_kb() - rss_before,
            )
            # one write + flush per event: lines from concurrent sweep
            # workers appending to the same file stay whole
            self._handle.write(json.dumps(event, sort_keys=True) + "\n")
            self._handle.flush()

    def close(self) -> None:
        self._handle.close()


_TRACER: Optional[Tracer] = None


def enable(path: str) -> Tracer:
    """Open (or keep) the trace stream at ``path`` for this process."""
    global _TRACER
    if _TRACER is not None:
        if _TRACER.path == path:
            return _TRACER
        _TRACER.close()
    _TRACER = Tracer(path)
    return _TRACER


def disable() -> None:
    """Flush and close the active trace stream, if any."""
    global _TRACER
    if _TRACER is not None:
        _TRACER.close()
        _TRACER = None


def active() -> bool:
    """Is a trace stream currently open in this process?"""
    return _TRACER is not None


@contextmanager
def span(name: str, **attrs) -> Iterator[Optional[Dict[str, object]]]:
    """Time a block as one trace event; no-op (yields None) when disabled."""
    tracer = _TRACER
    if tracer is None:
        yield None
        return
    with tracer.span(name, **attrs) as extra:
        yield extra


def read_events(path: str):
    """Parse a JSONL trace back into a list of event dicts."""
    events = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
