"""Bench-regression gate: compare current numbers against baselines.

``python -m repro regress`` loads the current ``BENCH_engine.json`` and
(optionally) a sweep document, compares them against archived baselines,
and exits non-zero when a metric regressed past its tolerance:

* **engine bench** — per-design stage-2 walk throughput
  (``walks / vec_seconds``) must stay within ``tolerance`` of the
  baseline; a design missing from the current bench is a regression.
* **streaming stage 1** — ``BENCH_stage1_stream.json``'s refs/sec must
  stay within ``tolerance`` of the baseline, and its peak RSS must not
  grow past the baseline by more than ``tolerance`` — the footprint
  check is what catches a silent return to whole-trace materialization.
* **sweep cells** — per (env, workload, design, thp) cell,
  ``mean_latency`` is deterministic for a fixed config, so it gets the
  tight ``latency_tolerance``; ``walks_per_second`` is wall-clock
  throughput and gets the looser ``tolerance``. A baseline cell that is
  missing or turned into an error cell is a regression.

On a clean run a dated record is appended to ``BENCH_trajectory.json``
so the performance history accumulates run over run (DESIGN.md §9).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

#: Relative slack on throughput-class metrics (walks/sec): wall-clock
#: noise on shared machines reaches ~10%, so 0.15 trips on a real 20%
#: regression without flaking on load (DESIGN.md §9).
DEFAULT_TOLERANCE = 0.15
#: Relative slack on mean-latency cells: the replay is deterministic for
#: a fixed config, so 0.01 only absorbs float formatting (DESIGN.md §9).
DEFAULT_LATENCY_TOLERANCE = 0.01

#: Default artifact locations, relative to the repository root (cwd).
DEFAULT_BENCH = "BENCH_engine.json"
DEFAULT_BENCH_BASELINE = os.path.join("benchmarks", "baselines",
                                      "BENCH_engine.json")
DEFAULT_SWEEP_BASELINE = os.path.join("benchmarks", "baselines",
                                      "sweep_small.json")
DEFAULT_STREAM_BENCH = "BENCH_stage1_stream.json"
DEFAULT_STREAM_BASELINE = os.path.join("benchmarks", "baselines",
                                       "BENCH_stage1_stream.json")
DEFAULT_TRAJECTORY = "BENCH_trajectory.json"


@dataclass(frozen=True)
class Regression:
    """One metric that crossed its tolerated bound."""

    metric: str      # "walks_per_second" | "mean_latency" | "missing_cell" | "error_cell"
    key: str         # human-readable design / cell identifier
    baseline: float
    current: float
    limit: float     # the bound that was crossed

    def render(self) -> str:
        return (f"REGRESSION {self.key}: {self.metric} "
                f"{self.current:,.2f} vs baseline {self.baseline:,.2f} "
                f"(limit {self.limit:,.2f})")


def load_document(path: str) -> Dict:
    """Read a JSON artifact (bench, sweep document, or trajectory)."""
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def bench_walks_per_second(document: Dict) -> Dict[str, float]:
    """Per-design stage-2 throughput of a ``BENCH_engine.json`` document."""
    out: Dict[str, float] = {}
    for entry in document.get("stage2", []):
        if entry.get("vec_seconds"):
            out[entry["design"]] = entry["walks"] / entry["vec_seconds"]
    return out


def compare_bench(current: Dict, baseline: Dict,
                  tolerance: float = DEFAULT_TOLERANCE) -> List[Regression]:
    """Regressions of the engine bench against its baseline.

    Beyond the throughput-within-tolerance check, each design's
    vec (and, when timed, native) speedup must clear its per-design
    floor — the baseline's recorded floor when present (the archived
    contract), else the floor the current bench recorded for itself.
    """
    current_wps = bench_walks_per_second(current)
    out: List[Regression] = []
    for design, base_wps in sorted(bench_walks_per_second(baseline).items()):
        wps = current_wps.get(design)
        key = f"bench:{design}"
        if wps is None:
            out.append(Regression("missing_cell", key, base_wps, 0.0,
                                  base_wps))
            continue
        limit = base_wps * (1.0 - tolerance)
        if wps < limit:
            out.append(Regression("walks_per_second", key, base_wps, wps,
                                  limit))
    baseline_entries = {entry["design"]: entry
                        for entry in baseline.get("stage2", [])}
    for entry in current.get("stage2", []):
        base_entry = baseline_entries.get(entry["design"], {})
        for speed_key, floor_key in (("speedup", "floor"),
                                     ("native_speedup", "native_floor")):
            floor = base_entry.get(floor_key) or entry.get(floor_key)
            speed = entry.get(speed_key)
            if floor and speed is not None and speed < floor:
                out.append(Regression(
                    "speedup_floor", f"bench:{entry['design']}:{speed_key}",
                    floor, speed, floor))
    # Two-level executor: group replay with N cell threads must keep
    # beating 1 thread by the recorded floor (set only on the numba
    # backend — interpreter threads share the GIL and can't speed up).
    base_group = baseline.get("group") or {}
    cur_group = current.get("group") or {}
    group_floor = base_group.get("floor") or cur_group.get("floor")
    group_speed = cur_group.get("speedup")
    if group_floor and group_speed is not None and group_speed < group_floor:
        out.append(Regression("speedup_floor", "bench:group:cell_threads",
                              group_floor, group_speed, group_floor))
    return out


def compare_stream(current: Dict, baseline: Dict,
                   tolerance: float = DEFAULT_TOLERANCE) -> List[Regression]:
    """Regressions of the streaming stage-1 bench against its baseline.

    Throughput (refs/sec) may not drop below ``1 - tolerance`` of the
    baseline; peak RSS may not grow above ``1 + tolerance`` of it. RSS
    is the load-bearing check: a whole-trace materialization sneaking
    back into the streaming path multiplies the footprint, not the
    wall time.
    """
    base = baseline.get("stream") or {}
    cur = current.get("stream") or {}
    out: List[Regression] = []
    base_rps = base.get("refs_per_sec") or 0.0
    cur_rps = cur.get("refs_per_sec") or 0.0
    rps_limit = base_rps * (1.0 - tolerance)
    if base_rps and cur_rps < rps_limit:
        out.append(Regression("refs_per_sec", "stream:stage1",
                              base_rps, cur_rps, rps_limit))
    base_rss = base.get("peak_rss_kb") or 0.0
    cur_rss = cur.get("peak_rss_kb") or 0.0
    rss_limit = base_rss * (1.0 + tolerance)
    if base_rss and cur_rss > rss_limit:
        out.append(Regression("peak_rss_kb", "stream:stage1",
                              base_rss, cur_rss, rss_limit))
    return out


def _cell_key(cell: Dict) -> Tuple:
    return (cell["env"], cell["workload"], cell.get("design"),
            bool(cell["thp"]))


def _cell_label(key: Tuple) -> str:
    env, workload, design, thp = key
    return f"{env}/{workload}/{design}/{'thp' if thp else '4k'}"


def compare_sweep(current: Dict, baseline: Dict,
                  tolerance: float = DEFAULT_TOLERANCE,
                  latency_tolerance: float = DEFAULT_LATENCY_TOLERANCE,
                  ) -> List[Regression]:
    """Regressions of a sweep document against its baseline document."""
    cells = {_cell_key(c): c for c in current.get("cells", [])
             if "error" not in c}
    errors = {_cell_key(c) for c in current.get("cells", [])
              if "error" in c}
    out: List[Regression] = []
    for cell in baseline.get("cells", []):
        if "error" in cell:
            continue
        key = _cell_key(cell)
        label = _cell_label(key)
        found = cells.get(key)
        if found is None:
            metric = "error_cell" if key in errors else "missing_cell"
            out.append(Regression(metric, label, cell["mean_latency"], 0.0,
                                  cell["mean_latency"]))
            continue
        latency_limit = cell["mean_latency"] * (1.0 + latency_tolerance)
        if found["mean_latency"] > latency_limit:
            out.append(Regression("mean_latency", label,
                                  cell["mean_latency"],
                                  found["mean_latency"], latency_limit))
        base_wps = cell.get("walks_per_second") or 0.0
        wps_limit = base_wps * (1.0 - tolerance)
        if base_wps and (found.get("walks_per_second") or 0.0) < wps_limit:
            out.append(Regression("walks_per_second", label, base_wps,
                                  found.get("walks_per_second") or 0.0,
                                  wps_limit))
    return out


def trajectory_record(bench: Optional[Dict], sweep: Optional[Dict],
                      regressions: List[Regression],
                      tolerance: float,
                      latency_tolerance: float,
                      stream: Optional[Dict] = None) -> Dict:
    """The dated history entry appended to ``BENCH_trajectory.json``."""
    record: Dict[str, object] = {
        "date": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "status": "regressed" if regressions else "clean",
        "tolerance": tolerance,
        "latency_tolerance": latency_tolerance,
        "regressions": [regression.render() for regression in regressions],
    }
    if bench is not None:
        record["bench_walks_per_second"] = bench_walks_per_second(bench)
        group = bench.get("group")
        if group:
            record["bench_group"] = {
                "cell_threads": group.get("cell_threads"),
                "speedup": group.get("speedup"),
                "kernel_backend": group.get("kernel_backend"),
            }
    if stream is not None and stream.get("stream"):
        entry = stream["stream"]
        record["stage1_stream"] = {
            "refs_per_sec": entry.get("refs_per_sec"),
            "peak_rss_kb": entry.get("peak_rss_kb"),
            "nrefs": entry.get("nrefs"),
            "chunk": entry.get("chunk"),
        }
    if sweep is not None:
        cells = [c for c in sweep.get("cells", []) if "error" not in c]
        # One group_seconds value per (workload, thp) group — every cell
        # of a group reports the same group wall time.
        group_walls: Dict[Tuple, float] = {}
        for cell in cells:
            wall = cell.get("group_seconds")
            if wall is not None:
                group_walls[(cell["workload"], bool(cell["thp"]))] = wall
        warm = sum(1 for c in cells if c.get("stage2_source") == "disk")
        record["sweep"] = {
            "cells": len(cells),
            "error_cells": len(sweep.get("cells", [])) - len(cells),
            "mean_latency": {
                _cell_label(_cell_key(c)): c["mean_latency"] for c in cells
            },
            "wall_seconds": sweep.get("meta", {}).get("wall_seconds"),
            "cell_threads": sweep.get("meta", {}).get("cell_threads"),
            "stage2_warm_hit_ratio": (warm / len(cells)) if cells else None,
            "group_wall_seconds": (sum(group_walls.values())
                                   if group_walls else None),
        }
    return record


def append_trajectory(path: str, record: Dict) -> Dict:
    """Append ``record`` to the trajectory store, creating it if needed."""
    if os.path.exists(path):
        document = load_document(path)
    else:
        document = {"records": []}
    document["records"].append(record)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    return document


def run_gate(bench_path: Optional[str] = DEFAULT_BENCH,
             baseline_bench_path: Optional[str] = DEFAULT_BENCH_BASELINE,
             sweep_path: Optional[str] = None,
             baseline_sweep_path: Optional[str] = DEFAULT_SWEEP_BASELINE,
             tolerance: float = DEFAULT_TOLERANCE,
             latency_tolerance: float = DEFAULT_LATENCY_TOLERANCE,
             trajectory_path: Optional[str] = DEFAULT_TRAJECTORY,
             stream_path: Optional[str] = DEFAULT_STREAM_BENCH,
             baseline_stream_path: Optional[str] = DEFAULT_STREAM_BASELINE,
             out: Callable[[str], None] = print) -> int:
    """The gate behind ``python -m repro regress``.

    Returns the process exit status: 0 clean (trajectory appended when
    ``trajectory_path`` is set), 1 regression detected, 2 usage error
    (no comparable inputs).
    """
    regressions: List[Regression] = []
    bench = current_sweep = stream = None
    compared = 0
    if bench_path and baseline_bench_path and os.path.exists(bench_path) \
            and os.path.exists(baseline_bench_path):
        bench = load_document(bench_path)
        baseline_bench = load_document(baseline_bench_path)
        regressions.extend(compare_bench(bench, baseline_bench, tolerance))
        compared += 1
        out(f"bench: {bench_path} vs {baseline_bench_path} "
            f"({len(bench.get('stage2', []))} design(s))")
    if stream_path and baseline_stream_path \
            and os.path.exists(stream_path) \
            and os.path.exists(baseline_stream_path):
        stream = load_document(stream_path)
        baseline_stream = load_document(baseline_stream_path)
        regressions.extend(compare_stream(stream, baseline_stream,
                                          tolerance))
        compared += 1
        out(f"stream: {stream_path} vs {baseline_stream_path}")
    if sweep_path:
        if not (baseline_sweep_path and os.path.exists(baseline_sweep_path)):
            out(f"error: sweep baseline {baseline_sweep_path!r} not found")
            return 2
        current_sweep = load_document(sweep_path)
        baseline_sweep = load_document(baseline_sweep_path)
        regressions.extend(compare_sweep(current_sweep, baseline_sweep,
                                         tolerance, latency_tolerance))
        compared += 1
        out(f"sweep: {sweep_path} vs {baseline_sweep_path} "
            f"({len(current_sweep.get('cells', []))} cell(s))")
    if not compared:
        out("error: nothing to compare (no bench found and no --sweep given)")
        return 2

    for regression in regressions:
        out(regression.render())
    if regressions:
        out(f"{len(regressions)} regression(s) past tolerance "
            f"{tolerance:.0%} (latency {latency_tolerance:.0%})")
        return 1
    out(f"clean: no regressions past tolerance {tolerance:.0%} "
        f"(latency {latency_tolerance:.0%})")
    if trajectory_path:
        record = trajectory_record(bench, current_sweep, regressions,
                                   tolerance, latency_tolerance,
                                   stream=stream)
        document = append_trajectory(trajectory_path, record)
        out(f"appended record #{len(document['records'])} to "
            f"{trajectory_path}")
    return 0
