"""Metrics registry: named counters, gauges, and histograms.

Every statistic the simulator keeps — TLB and cache hit/miss counts, PWC
hits, walker walk/cycle totals, DMT fetcher hits and fallbacks, stage-1
memo reuse, sweep progress — is registered here at construction time
under a dotted name (``tlb.l1d_tlb.hits``, ``walker.dmt-native.walks``,
``sweep.cells``). A structure keeps its own private instrument object
(so per-instance statistics still work through thin compatibility
properties), while :meth:`MetricsRegistry.snapshot` aggregates every
instance of a name into one flat ``{name: value}`` dict:

* counters aggregate by **sum** across instances;
* gauges aggregate **last-set-wins** (a monotonic stamp breaks ties);
* histograms expand into ``name.count`` / ``name.sum`` / ``name.mean`` /
  ``name.min`` / ``name.max``, merged across instances.

The registry is process-wide (``registry()``); sweeps fan out across
worker processes, so each worker accumulates its own registry — the
sweep runner reports its cross-process progress through counters it owns
in the parent (DESIGN.md §9). ``scoped()`` swaps in a fresh registry for
a ``with`` block; instruments bind to the registry active at their
construction time.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Union

MetricValue = Union[int, float]

#: Monotonic stamp source for last-set-wins gauge aggregation.
_SET_SEQ = itertools.count(1)


class Counter:
    """A monotonically accumulated named count (hits, walks, errors)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """A named point-in-time value (depth, ratio, resident set size)."""

    __slots__ = ("name", "value", "stamp")

    def __init__(self, name: str):
        self.name = name
        self.value: MetricValue = 0
        self.stamp = 0

    def set(self, value: MetricValue) -> None:
        self.value = value
        self.stamp = next(_SET_SEQ)

    def reset(self) -> None:
        self.value = 0
        self.stamp = 0


class Histogram:
    """A running distribution summary (count / sum / mean / min / max)."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.reset()

    def observe(self, value: MetricValue) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        self.count = 0
        self.total = 0
        self.min: Optional[MetricValue] = None
        self.max: Optional[MetricValue] = None


class MetricsRegistry:
    """Registry of every live instrument, keyed by dotted metric name.

    ``counter``/``gauge``/``histogram`` create a *new* instrument bound
    to this registry and return it; the caller keeps the reference and
    mutates it directly (the hot paths never touch the registry).
    Registering the same name twice with a different kind raises
    ``TypeError`` — one name, one aggregation rule.
    """

    def __init__(self):
        self._metrics: Dict[str, List] = {}
        self._kinds: Dict[str, type] = {}

    def _make(self, name: str, kind: type):
        registered = self._kinds.setdefault(name, kind)
        if registered is not kind:
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{registered.__name__}, not {kind.__name__}")
        instrument = kind(name)
        self._metrics.setdefault(name, []).append(instrument)
        return instrument

    def counter(self, name: str) -> Counter:
        return self._make(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._make(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._make(name, Histogram)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def snapshot(self, prefix: Optional[str] = None) -> Dict[str, MetricValue]:
        """Flat ``{name: value}`` view of every registered metric.

        ``prefix`` restricts the view to names starting with it (e.g.
        ``"sweep."``). Counters sum across instances; gauges report the
        most recently set instance; histograms expand into their summary
        fields.
        """
        flat: Dict[str, MetricValue] = {}
        for name in self.names():
            if prefix is not None and not name.startswith(prefix):
                continue
            instances = self._metrics[name]
            kind = self._kinds[name]
            if kind is Counter:
                flat[name] = sum(c.value for c in instances)
            elif kind is Gauge:
                flat[name] = max(instances, key=lambda g: g.stamp).value
            else:
                count = sum(h.count for h in instances)
                total = sum(h.total for h in instances)
                mins = [h.min for h in instances if h.min is not None]
                maxes = [h.max for h in instances if h.max is not None]
                flat[f"{name}.count"] = count
                flat[f"{name}.sum"] = total
                flat[f"{name}.mean"] = total / count if count else 0.0
                flat[f"{name}.min"] = min(mins) if mins else 0
                flat[f"{name}.max"] = max(maxes) if maxes else 0
        return flat

    def reset(self) -> None:
        """Zero every instrument (instances stay registered)."""
        for instances in self._metrics.values():
            for instrument in instances:
                instrument.reset()


_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The currently active process-wide registry."""
    return _REGISTRY


def set_registry(new: MetricsRegistry) -> MetricsRegistry:
    """Swap the active registry; returns the previous one."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = new
    return previous


@contextmanager
def scoped(new: Optional[MetricsRegistry] = None) -> Iterator[MetricsRegistry]:
    """Swap in a fresh (or given) registry for the duration of the block.

    Instruments constructed inside the block bind to the scoped registry
    and keep writing to it after the block exits — scoping isolates
    *registration*, not mutation.
    """
    fresh = new if new is not None else MetricsRegistry()
    previous = set_registry(fresh)
    try:
        yield fresh
    finally:
        set_registry(previous)


def counter(name: str) -> Counter:
    """Register a counter with the active registry."""
    return registry().counter(name)


def gauge(name: str) -> Gauge:
    """Register a gauge with the active registry."""
    return registry().gauge(name)


def histogram(name: str) -> Histogram:
    """Register a histogram with the active registry."""
    return registry().histogram(name)


def slug(name: str) -> str:
    """Instance name -> metric-name segment: ``"L1D(pte)"`` -> ``"l1d_pte"``.

    Lowercases and collapses every non-alphanumeric run into a single
    underscore so structure display names compose into dotted metric
    names without separators colliding.
    """
    parts = "".join(c if c.isalnum() else " " for c in name.lower()).split()
    return "_".join(parts)
