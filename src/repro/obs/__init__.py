"""Unified observability layer: metrics, trace spans, regression gate.

Three cooperating pieces (DESIGN.md §9):

* :mod:`repro.obs.metrics` — a process-wide registry of named counters,
  gauges, and histograms. The hardware structures (TLBs, caches, PWCs),
  walkers, DMT fetchers, the stage-1 memo, the sweep runner, the
  multi-process scheduler, and the resumable job layer (e.g.
  ``sweep.resumed_groups``/``sweep.retried_shards``) all register their
  counters here, so one ``snapshot()`` call yields every live statistic
  as a flat dict.
* :mod:`repro.obs.trace` — nested wall-time/RSS spans emitted as a JSONL
  event stream, enabled with ``--trace <path>`` on ``run``/``sweep``.
* :mod:`repro.obs.regress` — the bench-regression gate behind
  ``python -m repro regress``: compares the current ``BENCH_engine.json``
  and a sweep document against archived baselines and appends to
  ``BENCH_trajectory.json`` on clean runs.

The package deliberately imports nothing from the rest of ``repro`` so
every layer (``hw``, ``translation``, ``core``, ``sim``) can instrument
itself without creating import cycles.
"""

from repro.obs import metrics, regress, trace

__all__ = ["metrics", "regress", "trace"]
