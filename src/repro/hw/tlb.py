"""TLB models: single level and the two-level L1 + STLB arrangement.

TLBs are indexed by (address-space id, virtual page number). Huge pages
occupy one entry tagged with their page size, as on real Intel STLBs that
hold 4 KB and 2 MB translations together.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.arch import PageSize, vpn_of
from repro.hw.config import MachineConfig, TLBConfig
from repro.analysis import sanitizer
from repro.obs import metrics


class TLBStats:
    """Hit/miss counters, registered as ``<scope>.hits``/``.misses``
    with the metrics registry (:mod:`repro.obs.metrics`)."""

    __slots__ = ("_hits", "_misses")

    def __init__(self, scope: str = "tlb"):
        self._hits = metrics.counter(f"{scope}.hits")
        self._misses = metrics.counter(f"{scope}.misses")

    @property
    def hits(self) -> int:
        return self._hits.value

    @hits.setter
    def hits(self, value: int) -> None:
        self._hits.value = value

    @property
    def misses(self) -> int:
        return self._misses.value

    @misses.setter
    def misses(self, value: int) -> None:
        self._misses.value = value

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    # Value semantics, as when this was a dataclass (parity tests
    # compare the stats of independently replayed machines).
    def __eq__(self, other) -> bool:
        if not isinstance(other, TLBStats):
            return NotImplemented
        return (self.hits, self.misses) == (other.hits, other.misses)

    __hash__ = None

    def __repr__(self) -> str:
        return f"TLBStats(hits={self.hits}, misses={self.misses})"


Key = Tuple[int, int, int]  # (asid, page-size shift, page-size-granule VPN)


class TLB:
    """One set-associative TLB level with LRU replacement."""

    def __init__(self, config: TLBConfig):
        self.config = config
        self._num_sets = config.num_sets
        self._assoc = config.assoc
        self._sets: Dict[int, Dict[Key, None]] = {}
        self.stats = TLBStats(scope=f"tlb.{metrics.slug(config.name)}")

    def _set_index(self, key: Key) -> int:
        return key[2] % self._num_sets

    def lookup(self, asid: int, va: int, page_size: PageSize) -> bool:
        key = (asid, int(page_size), vpn_of(va, page_size))
        way_set = self._sets.get(self._set_index(key))
        if way_set is not None and key in way_set:
            way_set.pop(key)
            way_set[key] = None
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def install(self, asid: int, va: int, page_size: PageSize) -> None:
        key = (asid, int(page_size), vpn_of(va, page_size))
        way_set = self._sets.setdefault(self._set_index(key), {})
        if key in way_set:
            way_set.pop(key)
        elif len(way_set) >= self._assoc:
            way_set.pop(next(iter(way_set)))
        way_set[key] = None

    def probe(self, asid: int, va: int, page_size: PageSize) -> bool:
        """Non-mutating presence check: no stats, no LRU reordering."""
        key = (asid, int(page_size), vpn_of(va, page_size))
        way_set = self._sets.get(self._set_index(key))
        return way_set is not None and key in way_set

    def invalidate_asid(self, asid: int) -> None:
        for way_set in self._sets.values():
            stale = [key for key in way_set if key[0] == asid]
            for key in stale:
                way_set.pop(key)

    def flush(self) -> None:
        self._sets.clear()


class TLBHierarchy:
    """L1 D-TLB backed by the unified L2 STLB (Table 3 geometry).

    ``lookup`` returns True on a hit at either level; an L1 miss that hits
    the STLB refills L1. A full miss triggers a page walk in the simulator,
    which then calls ``fill`` with the translation's page size.

    ``accept_rates`` (per page size) thin hits for scaled-down working
    sets: each TLB entry covers a constant number of bytes, so against a
    working set 512x smaller than the paper's the TLB reach is relatively
    512x larger — especially distorting for 2 MB entries, whose reach can
    cover the entire scaled working set. Accepting hits at the ratio of
    paper-scale to simulated-scale hit rates restores the miss behaviour
    (DESIGN.md §5); the thinning is deterministic (credit counters).
    """

    def __init__(self, l1: TLBConfig, stlb: TLBConfig,
                 accept_rates: Optional[Dict[PageSize, float]] = None):
        self.l1 = TLB(l1)
        self.stlb = TLB(stlb)
        self._accept = dict(accept_rates) if accept_rates else None
        self._credit: Dict[PageSize, float] = {}
        sanitizer.register_tlb(self)  # no-op unless --sanitize is active

    @classmethod
    def from_machine(cls, machine: MachineConfig,
                     accept_rates: Optional[Dict[PageSize, float]] = None
                     ) -> "TLBHierarchy":
        return cls(machine.l1d_tlb, machine.l2_stlb, accept_rates)

    def _accept_hit(self, page_size: PageSize) -> bool:
        if self._accept is None:
            return True
        rate = self._accept.get(page_size, 1.0)
        if rate >= 1.0:
            return True
        credit = self._credit.get(page_size, 0.0) + rate
        if credit >= 1.0:
            self._credit[page_size] = credit - 1.0
            return True
        self._credit[page_size] = credit
        return False

    def lookup(self, asid: int, va: int, page_size: PageSize) -> bool:
        if self.l1.lookup(asid, va, page_size):
            if self._accept_hit(page_size):
                return True
            return False
        if self.stlb.lookup(asid, va, page_size):
            self.l1.install(asid, va, page_size)
            if self._accept_hit(page_size):
                return True
            return False
        return False

    def probe(self, asid: int, va: int, page_size: PageSize) -> bool:
        """Non-mutating: is the translation present at either level?"""
        return self.l1.probe(asid, va, page_size) or \
            self.stlb.probe(asid, va, page_size)

    def fill(self, asid: int, va: int, page_size: PageSize) -> None:
        self.stlb.install(asid, va, page_size)
        self.l1.install(asid, va, page_size)

    def flush(self) -> None:
        self.l1.flush()
        self.stlb.flush()

    @property
    def miss_rate(self) -> float:
        """Full-hierarchy miss rate relative to L1 accesses."""
        total = self.l1.stats.accesses
        return self.stlb.stats.misses / total if total else 0.0
