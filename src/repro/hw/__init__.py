"""Hardware models: caches, TLBs, page-walk caches, machine configuration."""

from repro.hw.cache import AccessResult, CacheHierarchy, SetAssociativeCache
from repro.hw.config import (
    CacheConfig,
    MachineConfig,
    PWCConfig,
    TLBConfig,
    xeon_gold_6138,
)
from repro.hw.pwc import NestedPWC, PageWalkCache
from repro.hw.tlb import TLB, TLBHierarchy

__all__ = [
    "AccessResult",
    "CacheHierarchy",
    "SetAssociativeCache",
    "CacheConfig",
    "MachineConfig",
    "PWCConfig",
    "TLBConfig",
    "xeon_gold_6138",
    "NestedPWC",
    "PageWalkCache",
    "TLB",
    "TLBHierarchy",
]
