"""Page-walk caches (PWC) and the nested PWC.

A PWC caches partial translations: level ``n`` of the PWC maps the virtual
address bits consumed down to radix level ``n`` onto the physical address of
the level-``n`` page-table node, letting the walker skip the upper levels of
the tree. Table 3 configures three PWC levels with 2 / 4 / 32 entries
(caching L4, L3 and L2 lookups respectively) at 1-cycle latency.

The nested PWC plays the same role for the host dimension of a 2D walk: it
caches gPA -> host-leaf partial walks so the inner hL4..hL1 chain can be
skipped for recently-walked guest-physical pages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.arch import level_shift
from repro.hw.config import PWCConfig
from repro.analysis import sanitizer
from repro.obs import metrics


class PWCStats:
    """Hit/miss counters, registered as ``<scope>.hits``/``.misses``
    with the metrics registry (:mod:`repro.obs.metrics`)."""

    __slots__ = ("_hits", "_misses")

    def __init__(self, scope: str = "pwc"):
        self._hits = metrics.counter(f"{scope}.hits")
        self._misses = metrics.counter(f"{scope}.misses")

    @property
    def hits(self) -> int:
        return self._hits.value

    @hits.setter
    def hits(self, value: int) -> None:
        self._hits.value = value

    @property
    def misses(self) -> int:
        return self._misses.value

    @misses.setter
    def misses(self, value: int) -> None:
        self._misses.value = value

    # Value semantics, as when this was a dataclass (parity tests
    # compare the stats of independently replayed machines).
    def __eq__(self, other) -> bool:
        if not isinstance(other, PWCStats):
            return NotImplemented
        return (self.hits, self.misses) == (other.hits, other.misses)

    __hash__ = None

    def __repr__(self) -> str:
        return f"PWCStats(hits={self.hits}, misses={self.misses})"


@dataclass
class PWCBatchView:
    """Flat mutable view of a :class:`PageWalkCache` (batched engine).

    ``tables`` are the live per-level insertion-ordered dicts (MRU last;
    evict = pop first). ``key_shifts[offset]`` turns a VA into the
    offset's lookup key (``va >> key_shifts[offset]``). ``accept`` and
    ``credit`` are the hit-thinning state, shared by reference so credit
    updates persist.
    """

    tables: list
    capacities: list
    accept: Optional[list]
    credit: list
    key_shifts: list
    top_level: int
    stats: "PWCStats"


@dataclass
class NestedPWCBatchView:
    """Flat mutable view of a :class:`NestedPWC` (batched engine)."""

    table: dict
    capacity: int
    accept: float
    stats: "PWCStats"
    owner: "NestedPWC"   # credit lives on the owner (float, write back)


@dataclass
class PWCArrayView:
    """Flat ndarray snapshot of a :class:`PageWalkCache` (native kernels).

    ``keys[level, :sizes[level]]`` / ``vals[level, ...]`` hold each
    level's entries in LRU order, oldest first (unused slots ``-1``).
    This is a *copy* of the live tables: the caller mutates the arrays
    and must call :meth:`writeback` exactly once afterwards; the owner
    must not be probed through any other path in between. ``accept``
    is all-zeros with ``has_accept`` False when thinning is off.
    Hit/miss stats are not carried — kernels accumulate them
    separately and flush to :class:`PWCStats` themselves; ``credit``
    *is* carried (and written back) because it is replay state.
    """

    keys: np.ndarray          # int64[levels, max_capacity]
    vals: np.ndarray          # int64[levels, max_capacity]
    sizes: np.ndarray         # int64[levels], live entries per level
    capacities: np.ndarray    # int64[levels]
    key_shifts: np.ndarray    # int64[levels], VA -> lookup key shifts
    has_accept: bool
    accept: np.ndarray        # float64[levels]
    credit: np.ndarray        # float64[levels]
    top_level: int
    stats: "PWCStats"
    owner: "PageWalkCache"

    def writeback(self) -> None:
        """Rebuild the owner's LRU tables and credits from the arrays."""
        for offset, table in enumerate(self.owner._tables):
            count = int(self.sizes[offset])
            table._entries = {int(self.keys[offset, k]):
                              int(self.vals[offset, k])
                              for k in range(count)}
        credit = self.owner._credit
        for offset in range(len(credit)):
            credit[offset] = float(self.credit[offset])


@dataclass
class NestedPWCArrayView:
    """Flat ndarray snapshot of a :class:`NestedPWC` (native kernels).

    Same copy/writeback contract as :class:`PWCArrayView`, over the
    single gfn -> hfn LRU table.
    """

    keys: np.ndarray      # int64[capacity], LRU order, oldest first
    vals: np.ndarray      # int64[capacity]
    meta: np.ndarray      # int64[2]: [live entries, capacity]
    accept: float
    credit: np.ndarray    # float64[1], written back to the owner
    stats: "PWCStats"
    owner: "NestedPWC"

    def writeback(self) -> None:
        count = int(self.meta[0])
        self.owner._table._entries = {int(self.keys[k]): int(self.vals[k])
                                      for k in range(count)}
        self.owner._credit = float(self.credit[0])


class _LRUTable:
    """Tiny fully-associative LRU table (PWC levels hold 2..32 entries)."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._entries: Dict[int, int] = {}

    def get(self, key: int) -> Optional[int]:
        if key in self._entries:
            value = self._entries.pop(key)
            self._entries[key] = value
            return value
        return None

    def peek(self, key: int) -> Optional[int]:
        """Non-mutating lookup: no LRU reordering."""
        return self._entries.get(key)

    def put(self, key: int, value: int) -> None:
        if key in self._entries:
            self._entries.pop(key)
        elif len(self._entries) >= self.capacity:
            self._entries.pop(next(iter(self._entries)))
        self._entries[key] = value

    def clear(self) -> None:
        self._entries.clear()


class PageWalkCache:
    """MMU cache over the upper levels of a radix tree.

    For a walk starting at level ``top`` (4 or 5), ``best_entry`` returns the
    deepest cached level: the walker then starts fetching at ``level - 1``.
    Keys are the VA prefix consumed above the returned node.
    """

    def __init__(self, config: PWCConfig, top_level: int = 4,
                 accept_rates: Optional[Sequence[float]] = None,
                 scope: str = "pwc"):
        self.config = config
        self.top_level = top_level
        # PWC level i caches nodes *pointed to by* radix level (top - i),
        # i.e. tables[0] -> skips L4, tables[-1] -> skips down to L2.
        self._tables = [_LRUTable(n) for n in config.entries_per_level]
        self.stats = PWCStats(scope=scope)
        # Hit-rate thinning for scaled-down simulations: a hit at PWC
        # level i is *accepted* only at rate accept_rates[i], restoring the
        # hit rate the same structure would see against a full-size
        # working set (DESIGN.md §5). Deterministic (credit counters).
        self._accept = list(accept_rates) if accept_rates is not None else None
        self._credit = [0.0] * len(self._tables)
        sanitizer.register_pwc(self)  # no-op unless --sanitize is active

    def _key(self, va: int, level: int) -> int:
        """VA bits that select the level-``level`` table."""
        return va >> level_shift(level + 1)

    def cached_levels(self) -> range:
        """Radix levels whose *table address* this PWC can provide.

        With three PWC levels on a 4-level tree these are levels 3, 2, 1
        skipped down to — i.e. the PWC can provide the address of the L3,
        L2, or L1 table directly.
        """
        return range(self.top_level - 1, self.top_level - 1 - len(self._tables), -1)

    def best_entry(self, va: int) -> Tuple[int, Optional[int]]:
        """Deepest cached partial walk for ``va``.

        Returns ``(level, table_addr)`` where ``level`` is the radix level of
        the table whose physical address is ``table_addr``; the walker resumes
        by indexing that table. If nothing is cached, returns
        ``(top_level, None)`` and the walk starts from the root.
        """
        for offset in range(len(self._tables) - 1, -1, -1):
            level = self.top_level - 1 - offset  # table level this PWC level provides
            addr = self._tables[offset].get(self._key(va, level))
            if addr is not None and self._accept_hit(offset):
                self.stats.hits += 1
                return (level, addr)
        self.stats.misses += 1
        return (self.top_level, None)

    def _accept_hit(self, offset: int) -> bool:
        if self._accept is None:
            return True
        self._credit[offset] += self._accept[offset]
        if self._credit[offset] >= 1.0:
            self._credit[offset] -= 1.0
            return True
        return False

    def peek(self, va: int, level: int) -> Optional[int]:
        """Non-mutating: cached address of the level-``level`` table for
        ``va``, without stats or thinning credit (sanitizer probes)."""
        offset = self.top_level - 1 - level
        if 0 <= offset < len(self._tables):
            return self._tables[offset].peek(self._key(va, level))
        return None

    def batch_view(self) -> "PWCBatchView":
        """Mutable flat state for the batched replay engine.

        The engine inlines :meth:`best_entry`/:meth:`fill` over the raw
        per-level dicts (same insertion-order LRU semantics) so the PWC
        contents, credits, and stats after a batched replay are identical
        to a scalar replay's.
        """
        return PWCBatchView(
            tables=[table._entries for table in self._tables],
            capacities=[table.capacity for table in self._tables],
            accept=self._accept,
            credit=self._credit,
            key_shifts=[level_shift(self.top_level - offset)
                        for offset in range(len(self._tables))],
            top_level=self.top_level,
            stats=self.stats,
        )

    def array_view(self) -> "PWCArrayView":
        """Flat ndarray state copy for the native kernel engine.

        See :class:`PWCArrayView` for the writeback contract.
        """
        nlev = len(self._tables)
        maxcap = max(table.capacity for table in self._tables)
        keys = np.full((nlev, maxcap), -1, dtype=np.int64)
        vals = np.full((nlev, maxcap), -1, dtype=np.int64)
        sizes = np.zeros(nlev, dtype=np.int64)
        for offset, table in enumerate(self._tables):
            for k, (key, val) in enumerate(table._entries.items()):
                keys[offset, k] = key
                vals[offset, k] = val
            sizes[offset] = len(table._entries)
        accept = (np.asarray(self._accept, dtype=np.float64)
                  if self._accept is not None
                  else np.zeros(nlev, dtype=np.float64))
        return PWCArrayView(
            keys=keys,
            vals=vals,
            sizes=sizes,
            capacities=np.array([t.capacity for t in self._tables],
                                dtype=np.int64),
            key_shifts=np.array([level_shift(self.top_level - offset)
                                 for offset in range(nlev)], dtype=np.int64),
            has_accept=self._accept is not None,
            accept=accept,
            credit=np.asarray(self._credit, dtype=np.float64),
            top_level=self.top_level,
            stats=self.stats,
            owner=self,
        )

    def fill(self, va: int, level: int, table_addr: int) -> None:
        """Record that the level-``level`` table for ``va`` lives at ``table_addr``."""
        offset = self.top_level - 1 - level
        if 0 <= offset < len(self._tables):
            self._tables[offset].put(self._key(va, level), table_addr)

    def flush(self) -> None:
        for table in self._tables:
            table.clear()


class NestedPWC:
    """Caches completed gPA -> hPA translations of page-table accesses.

    During a 2D walk every guest-dimension step needs the host physical
    address of a guest-physical page-table page; this cache short-circuits
    the inner host walk for recently used guest-physical frames (the paper's
    "Nested PWC", Table 3). Keyed by guest frame number.
    """

    def __init__(self, config: PWCConfig, accept_rate: float = 1.0):
        self.config = config
        self._table = _LRUTable(sum(config.entries_per_level))
        self.stats = PWCStats(scope="pwc.nested")
        self._accept = accept_rate
        self._credit = 0.0

    def get(self, gfn: int) -> Optional[int]:
        hfn = self._table.get(gfn)
        if hfn is not None and self._accept < 1.0:
            self._credit += self._accept
            if self._credit >= 1.0:
                self._credit -= 1.0
            else:
                hfn = None
        if hfn is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return hfn

    def fill(self, gfn: int, hfn: int) -> None:
        self._table.put(gfn, hfn)

    def flush(self) -> None:
        self._table.clear()

    @property
    def credit(self) -> float:
        """Hit-thinning credit counter (batched engine reads/writes it)."""
        return self._credit

    @credit.setter
    def credit(self, value: float) -> None:
        self._credit = value

    def batch_view(self) -> NestedPWCBatchView:
        """Mutable flat state for the batched replay engine."""
        return NestedPWCBatchView(
            table=self._table._entries,
            capacity=self._table.capacity,
            accept=self._accept,
            stats=self.stats,
            owner=self,
        )

    def array_view(self) -> "NestedPWCArrayView":
        """Flat ndarray state copy for the native kernel engine.

        See :class:`NestedPWCArrayView` for the writeback contract.
        """
        capacity = self._table.capacity
        keys = np.full(capacity, -1, dtype=np.int64)
        vals = np.full(capacity, -1, dtype=np.int64)
        for k, (key, val) in enumerate(self._table._entries.items()):
            keys[k] = key
            vals[k] = val
        return NestedPWCArrayView(
            keys=keys,
            vals=vals,
            meta=np.array([len(self._table._entries), capacity],
                          dtype=np.int64),
            accept=self._accept,
            credit=np.array([self._credit], dtype=np.float64),
            stats=self.stats,
            owner=self,
        )
