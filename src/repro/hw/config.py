"""Hardware configuration of the simulated machine.

The defaults reproduce Table 3 of the paper, which itself mirrors the
measurement platform of Table 2 (an Intel Xeon Gold 6138).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


@dataclass(frozen=True)
class CacheConfig:
    """A set-associative cache level.

    ``latency`` is the round-trip access latency in cycles charged on a hit
    at this level (Table 3 lists 4 / 14 / 54 cycles for L1D / L2 / LLC).
    """

    name: str
    size_bytes: int
    assoc: int
    line_bytes: int = 64
    latency: int = 4

    @property
    def num_sets(self) -> int:
        sets = self.size_bytes // (self.assoc * self.line_bytes)
        if sets <= 0:
            raise ValueError(f"cache {self.name} too small for its geometry")
        return sets


@dataclass(frozen=True)
class TLBConfig:
    """A TLB level (entries are page translations, not bytes)."""

    name: str
    entries: int
    assoc: int

    @property
    def num_sets(self) -> int:
        return max(1, self.entries // self.assoc)


@dataclass(frozen=True)
class PWCConfig:
    """Page-walk cache: per-level entry counts, top level first.

    Table 3: "3 levels, 2-4-32 entries per level, 1 cycle RT" — the three
    levels cache L4, L3 and L2 partial translations respectively.
    """

    entries_per_level: Tuple[int, ...] = (2, 4, 32)
    latency: int = 1


@dataclass(frozen=True)
class MachineConfig:
    """Full simulated-machine configuration (Table 3)."""

    cores: int = 20
    l1d_tlb: TLBConfig = field(default_factory=lambda: TLBConfig("L1D TLB", 64, 4))
    l1i_tlb: TLBConfig = field(default_factory=lambda: TLBConfig("L1I TLB", 128, 8))
    l2_stlb: TLBConfig = field(default_factory=lambda: TLBConfig("L2 STLB", 1536, 12))
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig("L1D", 32 * 1024, 8, latency=4)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig("L2", 1024 * 1024, 16, latency=14)
    )
    llc: CacheConfig = field(
        default_factory=lambda: CacheConfig("LLC", 22 * 1024 * 1024, 11, latency=54)
    )
    memory_latency: int = 200
    pwc: PWCConfig = field(default_factory=PWCConfig)
    nested_pwc: PWCConfig = field(default_factory=PWCConfig)
    #: Fraction of each cache level's capacity effectively available to
    #: page-table lines while the application streams data through the same
    #: hierarchy. The walk-side replay (repro.sim) sizes its PTE caches by
    #: this factor instead of re-simulating every data access per design.
    pte_cache_share: float = 0.02

    def scaled_pte_cache(self, cfg: CacheConfig) -> CacheConfig:
        """Shrink a cache level to the share available for PTE lines."""
        size = max(cfg.assoc * cfg.line_bytes, int(cfg.size_bytes * self.pte_cache_share))
        return CacheConfig(cfg.name + "(pte)", size, cfg.assoc, cfg.line_bytes, cfg.latency)


def xeon_gold_6138() -> MachineConfig:
    """The paper's simulated platform (Tables 2 and 3)."""
    return MachineConfig()
