"""Set-associative caches and a three-level hierarchy.

The hierarchy charges Table 3 round-trip latencies: an access probes L1,
then L2, then LLC, then main memory, and installs the line in every level
it missed in (inclusive allocation, LRU replacement).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.hw.config import CacheConfig, MachineConfig
from repro.obs import metrics


class CacheStats:
    """Hit/miss counters, registered as ``cache.<level>.hits``/``.misses``
    with the metrics registry (:mod:`repro.obs.metrics`)."""

    __slots__ = ("_hits", "_misses")

    def __init__(self, scope: str = "cache"):
        self._hits = metrics.counter(f"{scope}.hits")
        self._misses = metrics.counter(f"{scope}.misses")

    @property
    def hits(self) -> int:
        return self._hits.value

    @hits.setter
    def hits(self, value: int) -> None:
        self._hits.value = value

    @property
    def misses(self) -> int:
        return self._misses.value

    @misses.setter
    def misses(self, value: int) -> None:
        self._misses.value = value

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    # Value semantics, as when this was a dataclass (parity tests
    # compare the stats of independently replayed machines).
    def __eq__(self, other) -> bool:
        if not isinstance(other, CacheStats):
            return NotImplemented
        return (self.hits, self.misses) == (other.hits, other.misses)

    __hash__ = None

    def __repr__(self) -> str:
        return f"CacheStats(hits={self.hits}, misses={self.misses})"


@dataclass
class CacheBatchView:
    """Flat mutable view of one cache level (batched replay engine).

    ``sets`` is the live set-index -> LRU-ordered line dict mapping; the
    engine inlines :meth:`SetAssociativeCache.lookup`/``install`` over it
    so LRU state and stats after a batched replay match the scalar
    path's exactly.
    """

    sets: Dict[int, Dict[int, None]]
    line_shift: int
    num_sets: int
    assoc: int
    latency: int
    name: str
    stats: CacheStats


@dataclass
class CacheArrayView:
    """Flat ndarray snapshot of one cache level (native kernel engine).

    ``tags[set * assoc : set * assoc + nvalid[set]]`` holds the set's
    line addresses in LRU order, oldest first — the same order the
    insertion-ordered set dicts keep; unused slots are ``-1``. Unlike
    :class:`CacheBatchView` (live dicts, mutations apply immediately)
    this is a *copy*: kernels mutate the arrays freely and the caller
    must invoke :meth:`writeback` exactly once afterwards to rebuild
    the owning cache's dict state. Between ``array_view()`` and
    ``writeback()`` the owner must not be accessed through any other
    path (the dicts are stale). Stats are not carried here — kernels
    accumulate hit/miss counters separately and flush them to
    :class:`CacheStats` themselves.
    """

    tags: np.ndarray      # int64[num_sets * assoc], -1 = invalid
    nvalid: np.ndarray    # int64[num_sets], live ways per set
    line_shift: int
    num_sets: int
    assoc: int
    latency: int
    name: str
    stats: CacheStats
    owner: "SetAssociativeCache"

    def writeback(self) -> None:
        """Rebuild the owner's set dicts from the (mutated) arrays."""
        sets = self.owner._sets
        sets.clear()
        assoc = self.assoc
        tags = self.tags
        for idx in np.nonzero(self.nvalid)[0].tolist():
            base = idx * assoc
            count = int(self.nvalid[idx])
            sets[idx] = {int(tags[base + k]): None for k in range(count)}


class SetAssociativeCache:
    """A single LRU set-associative cache level.

    Lines are tracked by line address (``addr >> line_shift``); no data is
    stored. LRU order per set is kept with an insertion-ordered dict, which
    makes both lookup and recency update O(1).
    """

    def __init__(self, config: CacheConfig):
        self.config = config
        self._line_shift = config.line_bytes.bit_length() - 1
        self._num_sets = config.num_sets
        self._assoc = config.assoc
        # set index -> {line_addr: None} in LRU order (oldest first)
        self._sets: Dict[int, Dict[int, None]] = {}
        self.stats = CacheStats(scope=f"cache.{metrics.slug(config.name)}")

    @property
    def latency(self) -> int:
        return self.config.latency

    def _line(self, addr: int) -> int:
        return addr >> self._line_shift

    def lookup(self, addr: int) -> bool:
        """Probe for ``addr``; update LRU and stats."""
        line = self._line(addr)
        way_set = self._sets.get(line % self._num_sets)
        if way_set is not None and line in way_set:
            way_set.pop(line)
            way_set[line] = None
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def install(self, addr: int) -> Optional[int]:
        """Insert the line for ``addr``; return the evicted line or None."""
        line = self._line(addr)
        index = line % self._num_sets
        way_set = self._sets.setdefault(index, {})
        if line in way_set:
            way_set.pop(line)
            way_set[line] = None
            return None
        evicted = None
        if len(way_set) >= self._assoc:
            evicted = next(iter(way_set))
            way_set.pop(evicted)
        way_set[line] = None
        return evicted

    def contains(self, addr: int) -> bool:
        """Probe without updating LRU or statistics."""
        line = self._line(addr)
        way_set = self._sets.get(line % self._num_sets)
        return way_set is not None and line in way_set

    def invalidate(self, addr: int) -> None:
        line = self._line(addr)
        way_set = self._sets.get(line % self._num_sets)
        if way_set is not None:
            way_set.pop(line, None)

    def flush(self) -> None:
        self._sets.clear()

    def batch_view(self) -> CacheBatchView:
        """Mutable flat state for the batched replay engine."""
        return CacheBatchView(
            sets=self._sets,
            line_shift=self._line_shift,
            num_sets=self._num_sets,
            assoc=self._assoc,
            latency=self.config.latency,
            name=self.config.name.split("(")[0],
            stats=self.stats,
        )

    def array_view(self) -> CacheArrayView:
        """Flat ndarray state copy for the native kernel engine.

        See :class:`CacheArrayView` for the writeback contract.
        """
        tags = np.full(self._num_sets * self._assoc, -1, dtype=np.int64)
        nvalid = np.zeros(self._num_sets, dtype=np.int64)
        assoc = self._assoc
        for idx, ways in self._sets.items():
            base = idx * assoc
            count = 0
            for line in ways:
                tags[base + count] = line
                count += 1
            nvalid[idx] = count
        return CacheArrayView(
            tags=tags,
            nvalid=nvalid,
            line_shift=self._line_shift,
            num_sets=self._num_sets,
            assoc=self._assoc,
            latency=self.config.latency,
            name=self.config.name.split("(")[0],
            stats=self.stats,
            owner=self,
        )


@dataclass
class AccessResult:
    """Outcome of one hierarchy access."""

    latency: int
    level: str  # "L1", "L2", "LLC" or "MEM"


class CacheHierarchy:
    """L1 -> L2 -> LLC -> memory, inclusive, LRU.

    ``access`` returns the round-trip latency of the satisfying level; lower
    levels that missed get the line installed so subsequent accesses hit
    closer to the core.
    """

    def __init__(self, levels: List[CacheConfig], memory_latency: int):
        if not levels:
            raise ValueError("need at least one cache level")
        self.levels = [SetAssociativeCache(cfg) for cfg in levels]
        self.memory_latency = memory_latency
        self._memory_accesses = metrics.counter("cache.memory_accesses")

    @property
    def memory_accesses(self) -> int:
        return self._memory_accesses.value

    @memory_accesses.setter
    def memory_accesses(self, value: int) -> None:
        self._memory_accesses.value = value

    @classmethod
    def from_machine(cls, machine: MachineConfig) -> "CacheHierarchy":
        return cls([machine.l1d, machine.l2, machine.llc], machine.memory_latency)

    @classmethod
    def pte_side(cls, machine: MachineConfig) -> "CacheHierarchy":
        """Hierarchy scaled to the page-table share of the caches (DESIGN §5).

        Each level keeps only the share of capacity that page-table lines
        effectively retain while the application streams data through the
        same caches. The surviving L1 slice is tiny (a handful of lines) —
        enough for the hottest upper-level table lines, which Figure 16
        shows costing L1/L2-class latencies, but nothing else.
        """
        levels = [
            machine.scaled_pte_cache(machine.l1d),
            machine.scaled_pte_cache(machine.l2),
            machine.scaled_pte_cache(machine.llc),
        ]
        return cls(levels, machine.memory_latency)

    def access(self, addr: int) -> AccessResult:
        missed: List[SetAssociativeCache] = []
        for cache in self.levels:
            if cache.lookup(addr):
                for lower in missed:
                    lower.install(addr)
                return AccessResult(cache.latency, cache.config.name.split("(")[0])
            missed.append(cache)
        self.memory_accesses += 1
        for lower in missed:
            lower.install(addr)
        return AccessResult(self.memory_latency, "MEM")

    def probe(self, addr: int) -> AccessResult:
        """Access that does not allocate on a miss.

        Used for losing parallel probes (ECPT ways, FPT/DMT multi-size
        slots): they consume bandwidth but their junk lines are not kept —
        keeping them would over-weight pollution in the capacity-scaled
        PTE-side caches.
        """
        for cache in self.levels:
            if cache.lookup(addr):
                return AccessResult(cache.latency, cache.config.name.split("(")[0])
        self.memory_accesses += 1
        return AccessResult(self.memory_latency, "MEM")

    def warm(self, addr: int) -> None:
        """Install a line in every level without charging latency (prefetch)."""
        for cache in self.levels:
            cache.install(addr)

    def warm_outer(self, addr: int) -> None:
        """Install a line only beyond L1 (models prefetch into L2/LLC)."""
        for cache in self.levels[1:]:
            cache.install(addr)

    def contains(self, addr: int) -> bool:
        return any(cache.contains(addr) for cache in self.levels)

    def flush(self) -> None:
        for cache in self.levels:
            cache.flush()
