"""DMT and pvDMT walkers (§3, §4.5): the designs under evaluation.

Each walker drives a :class:`~repro.core.fetcher.DMTFetcher` over the
machine's register file and falls back to the corresponding x86 radix
walker when no register covers the address or the mapping's P-bit is
clear — exactly the hardware behaviour of Figure 10.
"""

from __future__ import annotations

from typing import Callable, List

from repro.arch import PAGE_SHIFT, PAGE_SIZE
from repro.core.fetcher import DMTFetcher, FetchResult
from repro.core.paravirt import GTEATable
from repro.core.registers import DMTRegisterFile
from repro.mem.physmem import PhysicalMemory
from repro.translation.base import (
    BatchSpec,
    MemorySubsystem,
    Walker,
    WalkRecorder,
    WalkResult,
)
from repro.virt.hypervisor import VM


def machine_reader(host_memory: PhysicalMemory, vms: List[VM]) -> Callable[[int], int]:
    """Build a host-physical-address word reader.

    Guest memory is a separate storage domain in this simulator; given a
    host-physical address, descend the VM chain's reverse EPT maps
    (outermost first) to find the domain that owns the bytes. On real
    hardware there is only one physical memory, so this is purely a
    simulation artifact.
    """

    def read(addr: int) -> int:
        frame = addr >> PAGE_SHIFT
        offset = addr & (PAGE_SIZE - 1)
        domain = host_memory
        for vm in vms:
            gfn = vm.reverse_lookup(frame)
            if gfn is None:
                break
            domain = vm.guest_memory
            frame = gfn
        return domain.read_word((frame << PAGE_SHIFT) | offset)

    return read


class _DMTWalkerBase(Walker):
    """Shared plumbing: recorder-backed fetch callback + fallback walker."""

    def __init__(
        self,
        register_file: DMTRegisterFile,
        fallback_walker: Walker,
        memsys: MemorySubsystem,
        read_pte: Callable[[int], int],
    ):
        super().__init__(memsys)
        self.fetcher = DMTFetcher(register_file)
        self.fallback_walker = fallback_walker
        self.read_pte = read_pte

    def _run(self, va: int, attempt: Callable[[WalkRecorder], FetchResult]) -> WalkResult:
        rec = WalkRecorder(self.memsys)
        result = attempt(rec)
        if result.fallback:
            # Not covered by the registers: the x86 page walker handles it.
            fallback = self.fallback_walker.translate(va)
            fallback.fallback = True
            return self.record(fallback)
        cycles = rec.finish()
        return self.record(
            WalkResult(va, cycles, rec.refs, result.pa, result.page_size)
        )

    def _fetch_cb(self, rec: WalkRecorder) -> Callable[[int, str, int], None]:
        def fetch(addr: int, tag: str, group: int) -> None:
            rec.fetch_grouped(addr, tag, group)

        return fetch

    def _attempt(self, va: int, fetch: Callable[[int, str, int], None]):
        """The register-file attempt with an externally supplied fetch
        callback — the batched engine's planning hook."""
        raise NotImplementedError

    def batch_spec(self) -> BatchSpec:
        return BatchSpec(kind="dmt", attempt=self._attempt,
                         fetcher=self.fetcher, fallback=self.fallback_walker)


class DMTNativeWalker(_DMTWalkerBase):
    """Native DMT: one memory reference (§3, Figure 7)."""

    name = "dmt-native"

    def _attempt(self, va: int, fetch: Callable[[int, str, int], None]) -> FetchResult:
        return self.fetcher.translate_native(va, self.read_pte, fetch)

    def translate(self, va: int) -> WalkResult:
        return self._run(
            va, lambda rec: self._attempt(va, self._fetch_cb(rec))
        )


class DMTVirtWalker(_DMTWalkerBase):
    """DMT in a VM without paravirtualization: three references (§3.1)."""

    name = "dmt-virt"

    def _attempt(self, gva: int, fetch: Callable[[int, str, int], None]) -> FetchResult:
        return self.fetcher.translate_virt(gva, self.read_pte, fetch)

    def translate(self, gva: int) -> WalkResult:
        return self._run(
            gva, lambda rec: self._attempt(gva, self._fetch_cb(rec))
        )


class PvDMTVirtWalker(_DMTWalkerBase):
    """pvDMT in a VM: two references (§3.1, §4.5.1)."""

    name = "pvdmt-virt"

    def __init__(
        self,
        register_file: DMTRegisterFile,
        gtea_table: GTEATable,
        fallback_walker: Walker,
        memsys: MemorySubsystem,
        read_pte: Callable[[int], int],
    ):
        super().__init__(register_file, fallback_walker, memsys, read_pte)
        self.gtea_table = gtea_table

    def _attempt(self, gva: int, fetch: Callable[[int, str, int], None]) -> FetchResult:
        return self.fetcher.translate_virt_pv(
            gva, self.gtea_table, self.read_pte, fetch
        )

    def translate(self, gva: int) -> WalkResult:
        return self._run(
            gva, lambda rec: self._attempt(gva, self._fetch_cb(rec))
        )


class PvDMTNestedWalker(_DMTWalkerBase):
    """pvDMT under nested virtualization: three references (§3.2)."""

    name = "pvdmt-nested"

    def __init__(
        self,
        register_file: DMTRegisterFile,
        l2_gtea_table: GTEATable,
        l1_gtea_table: GTEATable,
        fallback_walker: Walker,
        memsys: MemorySubsystem,
        read_pte: Callable[[int], int],
    ):
        super().__init__(register_file, fallback_walker, memsys, read_pte)
        self.l2_gtea_table = l2_gtea_table
        self.l1_gtea_table = l1_gtea_table

    def _attempt(self, l2va: int, fetch: Callable[[int, str, int], None]) -> FetchResult:
        return self.fetcher.translate_nested_pv(
            l2va, self.l2_gtea_table, self.l1_gtea_table, self.read_pte, fetch
        )

    def translate(self, l2va: int) -> WalkResult:
        return self._run(
            l2va, lambda rec: self._attempt(l2va, self._fetch_cb(rec))
        )
