"""Flattened Page Tables (FPT) — comparison design (§6.2.1).

Park et al. (ASPLOS'22) flatten the radix tree by merging adjacent levels:
L4 with L3 and L2 with L1, giving 2 MB table nodes indexed by 18 VA bits.
A native walk takes two references; a virtualized walk (guest and host
both flattened) takes eight — each of the two guest fetches needs a
two-step host resolution, plus two more for the data page.

Huge (2 MB) pages use FPT's *partial flattening*: the merged L4L3 root
still resolves the region, but 2 MB PTEs live in a dense, ordinary
L2-style table (one 4 KB page per 1 GB region) instead of the flattened
leaf. A walk probes the flattened 4 KB leaf slot and the dense huge slot
in parallel; the PS bit disambiguates and the valid probe completes the
translation.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.arch import (
    PAGE_SHIFT,
    PAGE_SIZE,
    PTE_SIZE,
    PageSize,
    level_index,
    page_offset,
)
from repro.kernel.page_table import PTE_HUGE, PTE_PRESENT, make_pte, pte_frame
from repro.mem.physmem import PhysicalMemory, frame_to_addr
from repro.translation.base import (
    BatchSpec,
    MemorySubsystem,
    Walker,
    WalkRecorder,
    WalkResult,
)
from repro.virt.hypervisor import VM

_FLAT_BITS = 18               # two merged 9-bit levels
_FLAT_ENTRIES = 1 << _FLAT_BITS
_FLAT_PAGES = _FLAT_ENTRIES * 8 // PAGE_SIZE   # 512 pages = 2 MB per node


class FlattenedPageTable:
    """A two-level flattened page table over one memory domain."""

    def __init__(self, memory: PhysicalMemory):
        self.memory = memory
        self.root_frame = memory.allocator.alloc_contig(_FLAT_PAGES, movable=False)
        # upper index -> leaf node frame
        self._leaves: Dict[int, int] = {}
        # upper index -> dense 2 MB-PTE table frame (partial flattening)
        self._huge_tables: Dict[int, int] = {}
        self.mapped = 0

    # -- index arithmetic ---------------------------------------------- #

    # dmtlint-domain: va=any -- the host FPT indexes this table by gPA
    @staticmethod
    def upper_index(va: int) -> int:
        return (va >> int(PageSize.SIZE_1G)) & (_FLAT_ENTRIES - 1)   # VA[47:30]

    @staticmethod
    def lower_index(va: int) -> int:
        return (va >> PAGE_SHIFT) & (_FLAT_ENTRIES - 1)   # VA[29:12]

    # dmtlint-domain: va=any -- the host FPT resolves gPAs through here
    def root_entry_addr(self, va: int) -> int:
        return frame_to_addr(self.root_frame) + self.upper_index(va) * 8

    # dmtlint-domain: va=any -- the host FPT resolves gPAs through here
    def leaf_entry_addr(self, leaf_frame: int, va: int,
                        page_size: PageSize = PageSize.SIZE_4K) -> int:
        if page_size == PageSize.SIZE_2M:
            raise ValueError("huge entries live in the dense huge table")
        return frame_to_addr(leaf_frame) + self.lower_index(va) * 8

    # dmtlint-domain: va=any -- the host FPT resolves gPAs through here
    def huge_entry_addr(self, huge_frame: int, va: int) -> int:
        """Entry address in the dense per-region 2 MB table (VA[29:21])."""
        return frame_to_addr(huge_frame) + level_index(va, 2) * PTE_SIZE

    # -- mapping API ----------------------------------------------------- #

    def _leaf_for(self, va: int, create: bool) -> Optional[int]:
        index = self.upper_index(va)
        frame = self._leaves.get(index)
        if frame is None and create:
            frame = self.memory.allocator.alloc_contig(_FLAT_PAGES, movable=False)
            self._leaves[index] = frame
            self.memory.write_word(self.root_entry_addr(va), make_pte(frame))
        return frame

    # dmtlint-domain: va=any -- the host FPT resolves gPAs through here
    def _huge_for(self, va: int, create: bool) -> Optional[int]:
        index = self.upper_index(va)
        frame = self._huge_tables.get(index)
        if frame is None and create:
            frame = self.memory.allocator.alloc_pages(0, movable=False)
            self._huge_tables[index] = frame
        return frame

    def map(self, va: int, pfn: int, page_size: PageSize = PageSize.SIZE_4K) -> None:
        if page_size == PageSize.SIZE_1G:
            raise ValueError("FPT models 4 KB and 2 MB pages only")
        if page_size == PageSize.SIZE_2M:
            huge = self._huge_for(va, create=True)
            self._leaf_for(va, create=True)  # region node exists either way
            self.memory.write_word(self.huge_entry_addr(huge, va),
                                   (pfn << PAGE_SHIFT) | PTE_PRESENT | PTE_HUGE | 0x2)
        else:
            leaf = self._leaf_for(va, create=True)
            self.memory.write_word(self.leaf_entry_addr(leaf, va),
                                   (pfn << PAGE_SHIFT) | PTE_PRESENT | 0x2)
        self.mapped += 1

    def unmap(self, va: int, page_size: PageSize = PageSize.SIZE_4K) -> None:
        if page_size == PageSize.SIZE_2M:
            huge = self._huge_for(va, create=False)
            if huge is not None:
                self.memory.write_word(self.huge_entry_addr(huge, va), 0)
                self.mapped -= 1
            return
        leaf = self._leaf_for(va, create=False)
        if leaf is not None:
            self.memory.write_word(self.leaf_entry_addr(leaf, va), 0)
            self.mapped -= 1

    def translate(self, va: int) -> Optional[Tuple[int, PageSize]]:
        leaf = self._leaf_for(va, create=False)
        if leaf is not None:
            pte = self.memory.read_word(self.leaf_entry_addr(leaf, va))
            if pte & PTE_PRESENT and not pte & PTE_HUGE:
                return (pte_frame(pte) << PAGE_SHIFT) + page_offset(va), \
                    PageSize.SIZE_4K
        huge = self._huge_for(va, create=False)
        if huge is not None:
            pte = self.memory.read_word(self.huge_entry_addr(huge, va))
            if pte & PTE_PRESENT and pte & PTE_HUGE:
                size = PageSize.SIZE_2M
                return (pte_frame(pte) << PAGE_SHIFT) + (va & (size.bytes - 1)), size
        return None

    def load_from_radix(self, page_table) -> int:
        count = 0
        for base_va, size in page_table._mapped_pages.items():
            found = page_table.lookup(base_va)
            if found is None or size == PageSize.SIZE_1G:
                continue
            self.map(base_va, pte_frame(found[1]), size)
            count += 1
        return count

    def table_bytes(self) -> int:
        return ((1 + len(self._leaves)) * _FLAT_PAGES + len(self._huge_tables)) \
            * PAGE_SIZE


class FPTNativeWalker(Walker):
    """Native FPT: two sequential references (Table 6)."""

    name = "fpt-native"

    def __init__(self, fpt: FlattenedPageTable, memsys: MemorySubsystem,
                 probe_huge: bool = False):
        super().__init__(memsys)
        self.fpt = fpt
        self.probe_huge = probe_huge

    def batch_spec(self) -> Optional[BatchSpec]:
        return BatchSpec(kind="fpt-native", fpt=self.fpt,
                         probe_huge=self.probe_huge)

    def _leaf_probe(self, leaf_frame: int, va: int, rec: WalkRecorder,
                    group: int, tag: str) -> Optional[Tuple[int, PageSize]]:
        """Probe the merged leaf node; with huge pages two slots are probed
        in parallel and the one holding the valid PTE completes the
        translation (the loser costs bandwidth, not latency)."""
        probes = [(self.fpt.leaf_entry_addr(leaf_frame, va), PageSize.SIZE_4K)]
        if self.probe_huge:
            huge = self.fpt._huge_for(va, create=False)
            if huge is not None:
                probes.append((self.fpt.huge_entry_addr(huge, va),
                               PageSize.SIZE_2M))
        hit = None
        hit_addr = None
        for addr, size in probes:
            pte = self.fpt.memory.read_word(addr)
            if pte & PTE_PRESENT and bool(pte & PTE_HUGE) == (size != PageSize.SIZE_4K):
                hit = ((pte_frame(pte) << PAGE_SHIFT) + (va & (size.bytes - 1)), size)
                hit_addr = addr
        for addr, size in probes:
            if hit_addr is None:
                rec.fetch_grouped(addr, f"{tag}{size.name}", group=group)
            elif addr == hit_addr:
                rec.fetch_grouped(addr, f"{tag}{size.name}", group=group)
            else:
                rec.memsys.caches.probe(addr)  # background probe
        return hit

    def translate(self, va: int) -> WalkResult:
        rec = WalkRecorder(self.memsys)
        rec.fetch(self.fpt.root_entry_addr(va), "F-root")
        leaf = self.fpt._leaves.get(self.fpt.upper_index(va))
        if leaf is None:
            return self.record(WalkResult(va, rec.finish(), rec.refs, None))
        hit = self._leaf_probe(leaf, va, rec, group=1, tag="F-leaf-")
        pa, size = hit if hit else (None, PageSize.SIZE_4K)
        return self.record(WalkResult(va, rec.finish(), rec.refs, pa, size))


class FPTNestedWalker(Walker):
    """Virtualized FPT: eight sequential references (Table 6).

    Both dimensions are flattened: resolving each guest node costs a
    two-step host walk, the guest fetch itself is one more, and the final
    data gPA needs another two-step host walk: 3 + 3 + 2 = 8.
    """

    name = "fpt-nested"

    def __init__(
        self,
        guest_fpt: FlattenedPageTable,
        host_fpt: FlattenedPageTable,
        vm: VM,
        memsys: MemorySubsystem,
        probe_huge: bool = False,
    ):
        super().__init__(memsys)
        self.guest_fpt = guest_fpt
        self.host_fpt = host_fpt
        self.vm = vm
        self.probe_huge = probe_huge

    def batch_spec(self) -> Optional[BatchSpec]:
        return BatchSpec(kind="fpt-nested", fpt=self.guest_fpt,
                         host_fpt=self.host_fpt, vm=self.vm,
                         probe_huge=self.probe_huge)

    _group_seq = 100  # grouped host-leaf probes need distinct group ids

    def _host_resolve(self, gpa: int, rec: WalkRecorder, tag: str) -> Optional[int]:
        """gPA -> hPA via the host FPT: two references."""
        rec.fetch(self.host_fpt.root_entry_addr(gpa), f"h{tag}-root")
        leaf = self.host_fpt._leaves.get(self.host_fpt.upper_index(gpa))
        if leaf is None:
            return None
        FPTNestedWalker._group_seq += 1
        group = FPTNestedWalker._group_seq
        probes = [(self.host_fpt.leaf_entry_addr(leaf, gpa), PageSize.SIZE_4K)]
        if self.probe_huge:
            huge = self.host_fpt._huge_for(gpa, create=False)
            if huge is not None:
                probes.append((self.host_fpt.huge_entry_addr(huge, gpa),
                               PageSize.SIZE_2M))
        hpa = None
        hit_addr = None
        for addr, size in probes:
            pte = self.host_fpt.memory.read_word(addr)
            if pte & PTE_PRESENT and \
                    bool(pte & PTE_HUGE) == (size != PageSize.SIZE_4K):
                hpa = (pte_frame(pte) << PAGE_SHIFT) + (gpa & (size.bytes - 1))
                hit_addr = addr
        for addr, _size in probes:
            if hit_addr is None or addr == hit_addr:
                rec.fetch_grouped(addr, f"h{tag}-leaf", group=group)
            else:
                rec.memsys.caches.probe(addr)
        return hpa

    def translate(self, gva: int) -> WalkResult:
        rec = WalkRecorder(self.memsys)
        # Guest root fetch: resolve its gPA to hPA first.
        root_gpa = self.guest_fpt.root_entry_addr(gva)
        root_hpa = self._host_resolve(root_gpa, rec, "g1")
        if root_hpa is None:
            return self.record(WalkResult(gva, rec.finish(), rec.refs, None))
        rec.fetch(root_hpa, "gF-root")
        leaf = self.guest_fpt._leaves.get(self.guest_fpt.upper_index(gva))
        if leaf is None:
            return self.record(WalkResult(gva, rec.finish(), rec.refs, None))

        # Guest leaf probe(s): host-resolve, then fetch.
        gpa = None
        size = PageSize.SIZE_4K
        group = 1
        # identify the winning slot first; losers are background traffic
        candidates = [(PageSize.SIZE_4K,
                       self.guest_fpt.leaf_entry_addr(leaf, gva))]
        if self.probe_huge:
            huge = self.guest_fpt._huge_for(gva, create=False)
            if huge is not None:
                candidates.append((PageSize.SIZE_2M,
                                   self.guest_fpt.huge_entry_addr(huge, gva)))
        slots = []
        for probe_size, entry_gpa in candidates:
            pte = self.guest_fpt.memory.read_word(entry_gpa)
            valid = pte & PTE_PRESENT and \
                bool(pte & PTE_HUGE) == (probe_size != PageSize.SIZE_4K)
            slots.append((probe_size, entry_gpa, pte, valid))
        any_valid = any(valid for *_, valid in slots)
        for probe_size, entry_gpa, pte, valid in slots:
            if any_valid and not valid:
                # losing probe: its resolve + fetch run off the critical path
                continue
            entry_hpa = self._host_resolve(entry_gpa, rec, "g2")
            if entry_hpa is None:
                continue
            rec.fetch_grouped(entry_hpa, f"gF-leaf-{probe_size.name}", group=group)
            if valid:
                size = probe_size
                gpa = (pte_frame(pte) << PAGE_SHIFT) + (gva & (size.bytes - 1))
        if gpa is None:
            return self.record(WalkResult(gva, rec.finish(), rec.refs, None, size))

        pa = self._host_resolve(gpa, rec, "d")
        return self.record(WalkResult(gva, rec.finish(), rec.refs, pa, size))
