"""Baseline radix walkers: native, 2D nested (Figure 2), and shadow.

These are the vanilla Linux / Linux-KVM translation paths the paper
compares against. The native walker uses the page-walk caches of Table 3
to skip upper levels; the nested walker additionally uses the nested PWC
to short-circuit the host dimension of recently walked guest frames.
"""

from __future__ import annotations

from typing import Optional

from repro.arch import PAGE_SHIFT, PAGE_SIZE, PageSize, level_index
from repro.kernel.page_table import PTE_HUGE, PTE_PRESENT, RadixPageTable, pte_frame
from repro.mem.physmem import frame_to_addr
from repro.translation.base import (
    BatchSpec,
    MemorySubsystem,
    Walker,
    WalkRecorder,
    WalkResult,
)
from repro.virt.hypervisor import VM

_LEAF_SIZE = {1: PageSize.SIZE_4K, 2: PageSize.SIZE_2M, 3: PageSize.SIZE_1G}


class NativeRadixWalker(Walker):
    """The x86 page-table walker of Figure 1 (with PWC)."""

    name = "radix-native"

    def __init__(self, page_table: RadixPageTable, memsys: MemorySubsystem):
        super().__init__(memsys)
        self.page_table = page_table

    def translate(self, va: int) -> WalkResult:
        rec = WalkRecorder(self.memsys)
        rec.charge(self.memsys.pwc_latency)
        start_level, table_addr = self.memsys.pwc.best_entry(va)
        if table_addr is None:
            table_frame = self.page_table.root_frame
        else:
            table_frame = table_addr >> PAGE_SHIFT

        pa: Optional[int] = None
        size = PageSize.SIZE_4K
        level = start_level
        while level >= 1:
            pte_addr = frame_to_addr(table_frame) + level_index(va, level) * 8
            rec.fetch(pte_addr, f"L{level}")
            pte = self.page_table.memory.read_word(pte_addr)
            if not pte & PTE_PRESENT:
                break
            if level == 1 or pte & PTE_HUGE:
                size = _LEAF_SIZE[level]
                pa = (pte_frame(pte) << PAGE_SHIFT) + (va & (size.bytes - 1))
                break
            table_frame = pte_frame(pte)
            self.memsys.pwc.fill(va, level - 1, frame_to_addr(table_frame))
            level -= 1
        return self.record(WalkResult(va, rec.finish(), rec.refs, pa, size))

    def batch_spec(self) -> BatchSpec:
        return BatchSpec(kind="radix-native", page_table=self.page_table)


class NestedRadixWalker(Walker):
    """The two-dimensional walk of Figure 2 (up to 24 references).

    The guest dimension walks the guest page table; every guest-physical
    access first resolves to host-physical through the host page table
    (EPT), unless the nested PWC already caches that guest frame. The
    guest PWC caches the *host* location of guest page-table nodes,
    skipping both dimensions for the upper levels.
    """

    name = "radix-nested"

    def __init__(self, guest_pt: RadixPageTable, vm: VM, memsys: MemorySubsystem):
        super().__init__(memsys)
        self.guest_pt = guest_pt
        self.vm = vm

    # -- host dimension -------------------------------------------------- #

    def _host_resolve(self, gpa: int, rec: WalkRecorder, dim: str) -> int:
        """gPA -> hPA, charging the hL4..hL1 chain on a nested-PWC miss."""
        gfn = gpa >> PAGE_SHIFT
        cached = self.memsys.nested_pwc.get(gfn)
        if cached is not None:
            return (cached << PAGE_SHIFT) | (gpa & (PAGE_SIZE - 1))
        hpa = self.vm.gpa_to_hpa(gpa)  # ensures the EPT path exists
        for step in self.vm.ept.walk_steps(gpa):
            rec.fetch(step.pte_addr, f"h{dim}L{step.level}")
        self.memsys.nested_pwc.fill(gfn, hpa >> PAGE_SHIFT)
        return hpa

    # -- full 2D walk ------------------------------------------------------ #

    def translate(self, gva: int) -> WalkResult:
        rec = WalkRecorder(self.memsys)
        rec.charge(self.memsys.pwc_latency)
        start_level, cached = self.memsys.guest_pwc.best_entry(gva)
        if cached is None:
            table_gpa = frame_to_addr(self.guest_pt.root_frame)
        else:
            table_gpa = cached

        pa: Optional[int] = None
        size = PageSize.SIZE_4K
        level = start_level
        while level >= 1:
            gpte_gpa = table_gpa + level_index(gva, level) * 8
            gpte_hpa = self._host_resolve(gpte_gpa, rec, dim=f"g{level}")
            rec.fetch(gpte_hpa, f"gL{level}")
            gpte = self.guest_pt.memory.read_word(gpte_gpa)
            if not gpte & PTE_PRESENT:
                break
            if level == 1 or gpte & PTE_HUGE:
                size = _LEAF_SIZE[level]
                data_gpa = (pte_frame(gpte) << PAGE_SHIFT) + (gva & (size.bytes - 1))
                pa = self._host_resolve(data_gpa, rec, dim="d")
                break
            table_gpa = frame_to_addr(pte_frame(gpte))
            self.memsys.guest_pwc.fill(gva, level - 1, table_gpa)
            level -= 1
        return self.record(WalkResult(gva, rec.finish(), rec.refs, pa, size))

    def batch_spec(self) -> BatchSpec:
        return BatchSpec(kind="radix-nested", guest_pt=self.guest_pt,
                         vm=self.vm)


class ShadowWalker(Walker):
    """Shadow paging: a native-style walk over the hypervisor's sPT.

    The walk itself is cheap; the cost of shadow paging is the VM exits on
    every guest page-table update, which the performance model charges
    from the VM's exit statistics (§2.2).
    """

    name = "radix-shadow"

    def __init__(self, spt: RadixPageTable, memsys: MemorySubsystem):
        super().__init__(memsys)
        self._inner = NativeRadixWalker(spt, memsys)

    def translate(self, va: int) -> WalkResult:
        return self.record(self._inner.translate(va))

    def batch_spec(self) -> BatchSpec:
        # A native walk over the sPT; the inner walker's counters mirror
        # this walker's (the scalar path records through both).
        return BatchSpec(kind="radix-native", page_table=self._inner.page_table,
                         extra_walkers=(self._inner,))
