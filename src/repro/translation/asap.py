"""ASAP prefetched address translation — comparison design (§6.2.2).

Margaritov et al. (MICRO'19) keep the x86 walk but *prefetch* the last two
levels of PTEs as soon as the virtual address is known: their OS places
page tables contiguously so leaf-PTE addresses are computable without
walking (the same insight DMT builds on, §4.1).

Model: the prefetch is issued at TLB-miss time and overlaps the walk's
upper levels, so a translation costs

    max(prefetch completion, upper-level walk) + the (now cached) leaf fetches.

Virtualized, the prefetched addresses sit behind a host-translation
dependency chain, so prefetch completion takes two chained accesses; the
2D walk must still fetch every PTE sequentially — which is why pvDMT's
two direct references beat it (§6.2.2): "despite L1 and L2 entries being
prefetched, a translation still takes a two-dimensional walk".
"""

from __future__ import annotations

from typing import Optional

from repro.kernel.page_table import RadixPageTable
from repro.translation.base import BatchSpec, MemorySubsystem, Walker, WalkResult
from repro.translation.radix import NativeRadixWalker, NestedRadixWalker
from repro.virt.hypervisor import VM

#: Page-table levels whose entries ASAP prefetches (the last two).
PREFETCH_LEVELS = (1, 2)


class ASAPNativeWalker(Walker):
    """Native ASAP: radix walk overlapped with an L2/L1 PTE prefetch."""

    name = "asap-native"

    def __init__(self, page_table: RadixPageTable, memsys: MemorySubsystem):
        super().__init__(memsys)
        self.page_table = page_table
        self._walker = NativeRadixWalker(page_table, memsys)
        self.prefetches = 0

    def batch_spec(self) -> Optional[BatchSpec]:
        return BatchSpec(kind="asap-native", page_table=self.page_table,
                         inner=self._walker)

    def _prefetch(self, va: int) -> int:
        """Issue the prefetches; returns their completion time (cycles).

        Prefetches are independent of each other, so completion is the max
        of the individual access latencies. The accesses go through the
        shared PTE-side hierarchy, installing the lines.
        """
        completion = 0
        for step in self.page_table.walk_steps(va):
            if step.level in PREFETCH_LEVELS:
                result = self.memsys.caches.access(step.pte_addr)
                completion = max(completion, result.latency)
                self.prefetches += 1
        return completion

    def translate(self, va: int) -> WalkResult:
        prefetch_done = self._prefetch(va)
        inner = self._walker.translate(va)
        # The walk's upper levels ran concurrently with the prefetch; the
        # prefetched (leaf) portion of the walk now hits the caches, which
        # inner.cycles already reflects. Total time cannot be shorter than
        # the prefetch itself (the leaf value arrives no earlier).
        cycles = max(prefetch_done, inner.cycles)
        result = WalkResult(va, cycles, inner.refs, inner.pa, inner.page_size)
        return self.record(result)


class ASAPNestedWalker(Walker):
    """Virtualized ASAP: 2D walk overlapped with both dimensions' prefetch."""

    name = "asap-nested"

    #: Prefetched addresses sit behind a gPA->hPA resolution: completion
    #: adds one dependent hop on top of the slowest prefetch access.
    CHAIN_HOP_CYCLES = 14

    def __init__(self, guest_pt: RadixPageTable, vm: VM, memsys: MemorySubsystem):
        super().__init__(memsys)
        self.guest_pt = guest_pt
        self.vm = vm
        self._walker = NestedRadixWalker(guest_pt, vm, memsys)
        self.prefetches = 0

    def batch_spec(self) -> Optional[BatchSpec]:
        return BatchSpec(kind="asap-nested", guest_pt=self.guest_pt,
                         vm=self.vm, inner=self._walker)

    def _prefetch(self, gva: int) -> int:
        worst = 0
        for step in self.guest_pt.walk_steps(gva):
            if step.level not in PREFETCH_LEVELS:
                continue
            host_addr = self.vm.gpa_to_hpa(step.pte_addr)
            result = self.memsys.caches.access(host_addr)
            worst = max(worst, result.latency)
            self.prefetches += 1
            # host-dimension leaf entries of the inner walk for this gPA
            for ept_step in self.vm.ept.walk_steps(step.pte_addr):
                if ept_step.level in PREFETCH_LEVELS:
                    inner = self.memsys.caches.access(ept_step.pte_addr)
                    worst = max(worst, inner.latency)
                    self.prefetches += 1
        return worst + self.CHAIN_HOP_CYCLES if worst else 0

    def translate(self, gva: int) -> WalkResult:
        prefetch_done = self._prefetch(gva)
        inner = self._walker.translate(gva)
        cycles = max(prefetch_done, inner.cycles)
        result = WalkResult(gva, cycles, inner.refs, inner.pa, inner.page_size)
        return self.record(result)
