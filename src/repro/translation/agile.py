"""Agile Paging — comparison design (§6.2.1).

Gandhi et al. (ISCA'16) start a virtualized walk in the shadow page table
and switch to nested paging partway down. In the common steady state the
shadow covers every level above the leaf: the walk performs native-speed
fetches of the shadow nodes, the entry at the switch point carries the
*host* location of the guest leaf table, the guest leaf PTE is fetched
directly, and only the final data page needs a host-dimension walk.
That is 3 + 1 + (up to 4) references — between the native 4 and the
nested 24 of Table 6.

Because the frequently-written leaf level stays under nested paging,
Agile Paging retains only a small fraction of shadow paging's VM exits
(``SHADOW_EXIT_FRACTION``), which the performance model charges.
"""

from __future__ import annotations

from typing import Optional

from repro.arch import PAGE_SHIFT, PAGE_SIZE, PageSize, level_index
from repro.kernel.page_table import PTE_HUGE, PTE_PRESENT, RadixPageTable, pte_frame
from repro.mem.physmem import frame_to_addr
from repro.translation.base import (
    BatchSpec,
    MemorySubsystem,
    Walker,
    WalkRecorder,
    WalkResult,
)
from repro.virt.hypervisor import VM

_LEAF_SIZE = {1: PageSize.SIZE_4K, 2: PageSize.SIZE_2M, 3: PageSize.SIZE_1G}

#: Fraction of full shadow paging's VM exits Agile Paging retains (upper
#: page-table levels change rarely; leaf updates do not trap).
SHADOW_EXIT_FRACTION = 0.05


class AgilePagingWalker(Walker):
    """Shadow upper levels + nested leaf level."""

    name = "agile"

    def __init__(
        self,
        guest_pt: RadixPageTable,
        spt: RadixPageTable,
        vm: VM,
        memsys: MemorySubsystem,
    ):
        super().__init__(memsys)
        self.guest_pt = guest_pt
        self.spt = spt
        self.vm = vm
        self.shadow_exit_fraction = SHADOW_EXIT_FRACTION

    def batch_spec(self) -> Optional[BatchSpec]:
        return BatchSpec(kind="agile", guest_pt=self.guest_pt,
                         spt=self.spt, vm=self.vm)

    def _host_resolve(self, gpa: int, rec: WalkRecorder, dim: str) -> int:
        gfn = gpa >> PAGE_SHIFT
        cached = self.memsys.nested_pwc.get(gfn)
        if cached is not None:
            return (cached << PAGE_SHIFT) | (gpa & (PAGE_SIZE - 1))
        hpa = self.vm.gpa_to_hpa(gpa)
        for step in self.vm.ept.walk_steps(gpa):
            rec.fetch(step.pte_addr, f"h{dim}L{step.level}")
        self.memsys.nested_pwc.fill(gfn, hpa >> PAGE_SHIFT)
        return hpa

    def translate(self, gva: int) -> WalkResult:
        rec = WalkRecorder(self.memsys)
        rec.charge(self.memsys.pwc_latency)

        # Where is the guest leaf? (determines the switch point)
        guest_steps = self.guest_pt.walk_steps(gva)
        leaf_step = guest_steps[-1]
        leaf_level = leaf_step.level

        # Phase 1: native-speed fetches of the shadow nodes covering the
        # levels above the guest leaf. The PWC applies as in a native walk.
        start_level, cached = self.memsys.pwc.best_entry(gva)
        table_frame = (cached >> PAGE_SHIFT) if cached is not None \
            else self.spt.root_frame
        level = min(start_level, self.guest_pt.levels)
        while level > leaf_level:
            addr = frame_to_addr(table_frame) + level_index(gva, level) * 8
            rec.fetch(addr, f"sL{level}")
            pte = self.spt.memory.read_word(addr)
            if pte & PTE_PRESENT and not pte & PTE_HUGE:
                table_frame = pte_frame(pte)
                self.memsys.pwc.fill(gva, level - 1, frame_to_addr(table_frame))
            level -= 1

        # Phase 2: the switch-point entry carries the host location of the
        # guest leaf table; fetch the guest leaf PTE directly.
        if not leaf_step.pte_value & PTE_PRESENT:
            return self.record(WalkResult(gva, rec.finish(), rec.refs, None))
        leaf_host_addr = self.vm.gpa_to_hpa(leaf_step.pte_addr)
        rec.fetch(leaf_host_addr, f"gL{leaf_level}")
        size = _LEAF_SIZE[leaf_level]
        data_gpa = (pte_frame(leaf_step.pte_value) << PAGE_SHIFT) \
            + (gva & (size.bytes - 1))

        # Phase 3: nested resolution of the data page.
        pa = self._host_resolve(data_gpa, rec, dim="d")
        return self.record(WalkResult(gva, rec.finish(), rec.refs, pa, size))
