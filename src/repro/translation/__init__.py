"""Translation designs: the x86 baselines, DMT/pvDMT, and prior work."""

from repro.translation.agile import AgilePagingWalker
from repro.translation.asap import ASAPNativeWalker, ASAPNestedWalker
from repro.translation.base import (
    MemorySubsystem,
    MemRef,
    Walker,
    WalkRecorder,
    WalkResult,
)
from repro.translation.dmt import (
    DMTNativeWalker,
    DMTVirtWalker,
    PvDMTNestedWalker,
    PvDMTVirtWalker,
    machine_reader,
)
from repro.translation.ecpt import (
    CuckooTable,
    ECPTNativeWalker,
    ECPTNestedWalker,
    ElasticCuckooPageTables,
)
from repro.translation.fpt import (
    FlattenedPageTable,
    FPTNativeWalker,
    FPTNestedWalker,
)
from repro.translation.radix import (
    NativeRadixWalker,
    NestedRadixWalker,
    ShadowWalker,
)

__all__ = [
    "AgilePagingWalker",
    "ASAPNativeWalker",
    "ASAPNestedWalker",
    "MemorySubsystem",
    "MemRef",
    "Walker",
    "WalkRecorder",
    "WalkResult",
    "DMTNativeWalker",
    "DMTVirtWalker",
    "PvDMTNestedWalker",
    "PvDMTVirtWalker",
    "machine_reader",
    "CuckooTable",
    "ECPTNativeWalker",
    "ECPTNestedWalker",
    "ElasticCuckooPageTables",
    "FlattenedPageTable",
    "FPTNativeWalker",
    "FPTNestedWalker",
    "NativeRadixWalker",
    "NestedRadixWalker",
    "ShadowWalker",
]
