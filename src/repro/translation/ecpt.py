"""Elastic Cuckoo Page Tables (ECPT) — comparison design (§6.2.1).

A full reimplementation of the hash-based design of Skarlatos et al.
(ASPLOS'20) and its nested variant (ASPLOS'22): per page size, a d-ary
cuckoo hash table maps VPNs to PTEs. As in ECPT, each hash bucket is one
64-byte cache line packing the PTEs of **eight consecutive virtual
pages** (the VPN group tag rides in otherwise-unused PTE bits), so one
probe costs one memory reference and sequential pages share lines.

Lookups probe every way of every page-size table *in parallel* (one
sequential step natively); inserts use cuckoo relocation of whole groups,
and a table resizes ("elastic") when relocation fails.

Nested ECPT takes three sequential steps — resolve the guest candidates'
host locations through the host ECPT, fetch the guest candidates, then
resolve the data page — with up to ways*sizes squared (81 with 3 ways and
3 sizes) parallel accesses in the first step, which is exactly the cost
pvDMT's two direct references avoid (§3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.arch import PAGE_SHIFT, PAGE_SIZE, PageSize
from repro.kernel.page_table import PTE_PRESENT, make_pte, pte_frame
from repro.mem.physmem import PhysicalMemory
from repro.translation.base import (
    BatchSpec,
    MemorySubsystem,
    Walker,
    WalkRecorder,
    WalkResult,
)
from repro.virt.hypervisor import VM

#: Cycles modeled for computing the way hashes of one lookup.
HASH_CYCLES = 2

_GROUP_PAGES = 8          # consecutive VPNs per bucket line
_LINE_BYTES = 64

_WAY_SEEDS = (0x9E3779B97F4A7C15, 0xBF58476D1CE4E5B9, 0x94D049BB133111EB)


def _mix(value: int, seed: int) -> int:
    """SplitMix64-style hash, reproducible and well distributed.

    ``value`` may arrive as a NumPy integer (miss streams are int64
    arrays); arbitrary-precision Python ints keep the mix overflow-free.
    """
    x = (int(value) * 2 + 1) * seed & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 31
    x = x * 0xD6E8FEB86659FD93 & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 27
    return x


class CuckooTable:
    """One elastic d-ary cuckoo hash table (one page size).

    Buckets are 64-byte lines holding the PTEs of one 8-page VPN group;
    the group tag is modeled alongside (architecturally it is embedded in
    spare PTE bits, so tag + PTE cost a single line fetch).
    """

    MAX_KICKS = 32

    def __init__(
        self,
        memory: PhysicalMemory,
        page_size: PageSize,
        ways: int = 3,
        initial_buckets: int = 128,
    ):
        self.memory = memory
        self.page_size = page_size
        self.ways = ways
        self.nbuckets = initial_buckets
        self.groups = 0
        self.resizes = 0
        self._way_frames: List[int] = []
        # tags[way][bucket] = group id + 1 (0 = empty); mirrors tag bits
        self._tags: List[Dict[int, int]] = []
        self._allocate_ways()

    # ------------------------------------------------------------------ #
    # Storage layout
    # ------------------------------------------------------------------ #

    def _way_pages(self) -> int:
        return max(1, self.nbuckets * _LINE_BYTES // PAGE_SIZE)

    def _allocate_ways(self) -> None:
        self._way_frames = [
            self.memory.allocator.alloc_contig(self._way_pages(), movable=False)
            for _ in range(self.ways)
        ]
        self._tags = [{} for _ in range(self.ways)]

    def _free_ways(self, frames: List[int], pages: int) -> None:
        for frame in frames:
            self.memory.allocator.free_contig(frame, pages)

    def _bucket_addr(self, way: int, bucket: int) -> int:
        return (self._way_frames[way] << PAGE_SHIFT) + bucket * _LINE_BYTES

    def _bucket_of(self, group: int, way: int) -> int:
        return _mix(group, _WAY_SEEDS[way % len(_WAY_SEEDS)] + way) % self.nbuckets

    # ------------------------------------------------------------------ #
    # Hash-table operations
    # ------------------------------------------------------------------ #

    def candidate_addrs(self, vpn: int) -> List[int]:
        """Line addresses probed in parallel for ``vpn`` (one per way)."""
        group = vpn >> 3
        slot = vpn & 7
        return [
            self._bucket_addr(way, self._bucket_of(group, way)) + slot * 8
            for way in range(self.ways)
        ]

    def _slot_hit(self, way: int, vpn: int) -> Optional[int]:
        """Address of vpn's PTE word if this way holds its group."""
        group = vpn >> 3
        bucket = self._bucket_of(group, way)
        if self._tags[way].get(bucket) != group + 1:
            return None
        return self._bucket_addr(way, bucket) + (vpn & 7) * 8

    def lookup(self, vpn: int) -> Optional[Tuple[int, int]]:
        """(PTE word address, PTE) if present."""
        found = self.lookup_way(vpn)
        return (found[0], found[1]) if found is not None else None

    def lookup_way(self, vpn: int) -> Optional[Tuple[int, int, int]]:
        """(PTE word address, PTE, way) if present."""
        for way in range(self.ways):
            addr = self._slot_hit(way, vpn)
            if addr is not None:
                pte = self.memory.read_word(addr)
                if pte & PTE_PRESENT:
                    return addr, pte, way
        return None

    def insert(self, vpn: int, pte: int) -> None:
        group = vpn >> 3
        # already-resident group: update in place
        for way in range(self.ways):
            addr = self._slot_hit(way, vpn)
            if addr is not None:
                self.memory.write_word(addr, pte)
                return
        pending = self._insert_group(group, {vpn & 7: pte})
        if pending is not None:
            self._resize(pending)

    def _insert_group(self, group: int, slots: Dict[int, int]):
        """Place a group's slots, cuckoo-kicking resident groups as needed.

        Returns None on success, or the still-homeless ``(group, slots)``
        when the kick chain exceeds MAX_KICKS (the caller must resize and
        re-place it — losing it would drop live translations).
        """
        way = 0
        for _ in range(self.MAX_KICKS):
            bucket = self._bucket_of(group, way)
            tag = self._tags[way].get(bucket, 0)
            base = self._bucket_addr(way, bucket)
            if tag == 0:
                self._tags[way][bucket] = group + 1
                for slot, pte in slots.items():
                    self.memory.write_word(base + slot * 8, pte)
                self.groups += 1
                return None
            if tag == group + 1:
                for slot, pte in slots.items():
                    self.memory.write_word(base + slot * 8, pte)
                return None
            # evict the resident group and take its bucket
            victim_group = tag - 1
            victim_slots = {}
            for slot in range(_GROUP_PAGES):
                value = self.memory.read_word(base + slot * 8)
                if value:
                    victim_slots[slot] = value
                    self.memory.write_word(base + slot * 8, 0)
            self._tags[way][bucket] = group + 1
            for slot, pte in slots.items():
                self.memory.write_word(base + slot * 8, pte)
            group, slots = victim_group, victim_slots
            way = (way + 1) % self.ways
        return (group, slots)

    def remove(self, vpn: int) -> bool:
        for way in range(self.ways):
            addr = self._slot_hit(way, vpn)
            if addr is not None and self.memory.read_word(addr):
                self.memory.write_word(addr, 0)
                group = vpn >> 3
                bucket = self._bucket_of(group, way)
                base = self._bucket_addr(way, bucket)
                if not any(self.memory.read_word(base + s * 8)
                           for s in range(_GROUP_PAGES)):
                    self._tags[way].pop(bucket, None)
                    self.groups -= 1
                return True
        return False

    def _collect_live(self) -> List[Tuple[int, Dict[int, int]]]:
        live: List[Tuple[int, Dict[int, int]]] = []
        for way, tags in enumerate(self._tags):
            for bucket, tag in tags.items():
                base = self._bucket_addr(way, bucket)
                slots = {}
                for slot in range(_GROUP_PAGES):
                    value = self.memory.read_word(base + slot * 8)
                    if value:
                        slots[slot] = value
                        self.memory.write_word(base + slot * 8, 0)
                live.append((tag - 1, slots))
        return live

    def _resize(self, extra: Optional[Tuple[int, Dict[int, int]]] = None) -> None:
        """Elastic growth: double the buckets and rehash (the 'E' in ECPT).

        ``extra`` is a group displaced by the failed insertion that
        triggered the resize; it must be re-placed with the rest.
        """
        pending = [extra] if extra is not None else []
        while True:
            self.resizes += 1
            old_frames = self._way_frames
            old_pages = self._way_pages()
            live = self._collect_live() + pending
            self.nbuckets *= 2
            self._allocate_ways()
            self._free_ways(old_frames, old_pages)
            self.groups = 0
            pending = []
            for index, (group, slots) in enumerate(live):
                leftover = self._insert_group(group, slots)
                if leftover is not None:
                    # extremely unlikely: double again, carrying everything
                    pending = [leftover] + live[index + 1:]
                    break
            if not pending:
                return

    @property
    def load_factor(self) -> float:
        return self.groups / (self.nbuckets * self.ways)

    def table_bytes(self) -> int:
        return self.ways * self._way_pages() * PAGE_SIZE


class CuckooWalkCache:
    """Way prediction (ECPT's Cuckoo Walk Tables/Caches).

    Caches which way of which size table holds a VPN group, so most
    lookups issue a single probe instead of ways x sizes parallel ones.
    LRU over (page-size, group) keys.
    """

    def __init__(self, capacity: int = 16384):
        self.capacity = capacity
        self._entries: Dict[Tuple[int, int], int] = {}
        self.hits = 0
        self.misses = 0

    def get(self, size: int, group: int) -> Optional[int]:
        key = (size, group)
        way = self._entries.pop(key, None)
        if way is None:
            self.misses += 1
            return None
        self._entries[key] = way
        self.hits += 1
        return way

    def put(self, size: int, group: int, way: int) -> None:
        key = (size, group)
        if key in self._entries:
            self._entries.pop(key)
        elif len(self._entries) >= self.capacity:
            self._entries.pop(next(iter(self._entries)))
        self._entries[key] = way

    def array_view(self) -> "CWCArrayView":
        """Flat ndarray state copy for the native kernel engine.

        See :class:`CWCArrayView` for the key encoding and the
        writeback contract.
        """
        keys = np.full(self.capacity, -1, dtype=np.int64)
        ways = np.full(self.capacity, -1, dtype=np.int64)
        for slot, ((size, group), way) in enumerate(self._entries.items()):
            keys[slot] = (group << 6) | size
            ways[slot] = way
        return CWCArrayView(
            keys=keys,
            ways=ways,
            meta=np.array([len(self._entries), self.capacity],
                          dtype=np.int64),
            owner=self,
        )


@dataclass
class CWCArrayView:
    """Flat ndarray snapshot of a :class:`CuckooWalkCache` (native kernels).

    The ``(size, group)`` key tuples are packed into one int64 as
    ``(group << 6) | size`` — ``size`` is a page-size shift (12/21/30),
    well under 64, and groups of 48-bit VAs leave ample headroom. Same
    copy/writeback contract as the cache/PWC array views: mutate the
    arrays, then call :meth:`writeback` exactly once; hit/miss counters
    are accumulated by the kernels and flushed separately.
    """

    keys: np.ndarray      # int64[capacity], LRU order oldest first, -1 empty
    ways: np.ndarray      # int64[capacity]
    meta: np.ndarray      # int64[2]: [live entries, capacity]
    owner: "CuckooWalkCache"

    def writeback(self) -> None:
        count = int(self.meta[0])
        self.owner._entries = {
            (int(self.keys[k]) & 63, int(self.keys[k]) >> 6):
            int(self.ways[k])
            for k in range(count)
        }


class ElasticCuckooPageTables:
    """The per-address-space set of cuckoo tables (one per page size)."""

    def __init__(self, memory: PhysicalMemory, ways: int = 3,
                 initial_buckets: int = 128):
        self.memory = memory
        self.cwc = CuckooWalkCache()
        self.tables: Dict[PageSize, CuckooTable] = {
            size: CuckooTable(
                memory, size, ways=ways,
                initial_buckets=initial_buckets if size == PageSize.SIZE_4K else 16,
            )
            for size in (PageSize.SIZE_4K, PageSize.SIZE_2M, PageSize.SIZE_1G)
        }

    def map(self, va: int, pfn: int, page_size: PageSize) -> None:
        vpn = va >> int(page_size)
        self.tables[page_size].insert(vpn, make_pte(pfn))

    def unmap(self, va: int, page_size: PageSize) -> bool:
        return self.tables[page_size].remove(va >> int(page_size))

    def translate(self, va: int) -> Optional[Tuple[int, PageSize]]:
        for size, table in self.tables.items():
            found = table.lookup(va >> int(size))
            if found is not None:
                pte = found[1]
                return (pte_frame(pte) << PAGE_SHIFT) + (va & (size.bytes - 1)), size
        return None

    # dmtlint-domain: va=any -- the host ECPT hashes gPAs into the same ways
    def candidate_probes(self, va: int) -> List[Tuple[int, PageSize, int]]:
        """All (PTE word addr, page size, vpn) probed in parallel for ``va``."""
        probes = []
        for size, table in self.tables.items():
            vpn = va >> int(size)
            for addr in table.candidate_addrs(vpn):
                probes.append((addr, size, vpn))
        return probes

    def probe_hit(self, va: int) -> Optional[Tuple[int, PageSize]]:
        """(PA, page size) if any probe hits (used by the walkers)."""
        return self.translate(va)

    def load_from_radix(self, page_table) -> int:
        """Mirror an existing radix page table's leaf mappings."""
        count = 0
        for base_va, size in page_table._mapped_pages.items():
            found = page_table.lookup(base_va)
            if found is None:
                continue
            self.map(base_va, pte_frame(found[1]), size)
            count += 1
        return count

    def total_bytes(self) -> int:
        return sum(t.table_bytes() for t in self.tables.values())


# dmtlint-domain: va=any -- probes both guest (gVA) and host (gPA) ECPTs
def _probe_step(ecpt: "ElasticCuckooPageTables", va: int,
                rec: WalkRecorder, tag: str) -> None:
    """One probe step of an ECPT lookup.

    The Cuckoo Walk Cache predicts the resident (size, way): on a CWC hit
    a single probe is issued. On a CWC miss, all ways of all size tables
    are probed in parallel; the translation completes when the *hitting*
    probe returns, so only that access is on the critical path — the
    losing probes occupy bandwidth and cache capacity but add no latency.
    """
    hit_addr = None
    hit_size = None
    hit_way = None
    for size, table in ecpt.tables.items():
        found = table.lookup_way(va >> int(size))
        if found is not None:
            hit_addr, _, hit_way = found
            hit_size = size
            break
    if hit_addr is not None:
        group = (va >> int(hit_size)) >> 3
        predicted = ecpt.cwc.get(int(hit_size), group)
        if predicted == hit_way:
            # CWC hit: single targeted probe
            rec.fetch(hit_addr, f"{tag}-{hit_size.name}")
            return
        ecpt.cwc.put(int(hit_size), group, hit_way)
    hit_line = hit_addr >> 6 if hit_addr is not None else None
    fetched_hit = False
    for addr, probe_size, vpn in ecpt.candidate_probes(va):
        if hit_line is not None and addr >> 6 == hit_line and not fetched_hit:
            rec.fetch(addr, f"{tag}-{probe_size.name}")
            fetched_hit = True
        else:
            rec.memsys.caches.probe(addr)  # background probe: no latency
    if hit_line is None:
        # full miss: completion waits for the slowest probe (hardware must
        # see every way miss before faulting)
        for addr, probe_size, vpn in ecpt.candidate_probes(va):
            rec.fetch_grouped(addr, f"{tag}-{probe_size.name}", group=id(rec) & 0xFFFF)
            break


class ECPTNativeWalker(Walker):
    """Native ECPT: one sequential step, ways*sizes parallel probes."""

    name = "ecpt-native"

    def __init__(self, ecpt: ElasticCuckooPageTables, memsys: MemorySubsystem):
        super().__init__(memsys)
        self.ecpt = ecpt

    def batch_spec(self) -> Optional[BatchSpec]:
        return BatchSpec(kind="ecpt-native", ecpt=self.ecpt)

    def translate(self, va: int) -> WalkResult:
        rec = WalkRecorder(self.memsys)
        rec.charge(HASH_CYCLES)
        _probe_step(self.ecpt, va, rec, "ecpt")
        hit = self.ecpt.translate(va)
        pa, size = hit if hit else (None, PageSize.SIZE_4K)
        return self.record(WalkResult(va, rec.finish(), rec.refs, pa, size))


class ECPTNestedWalker(Walker):
    """Nested ECPT: three sequential steps, up to 81 parallel probes.

    Step 1 resolves the host location of every guest candidate entry by
    probing the host ECPT (guest candidates x host ways parallel probes).
    Step 2 fetches the guest candidates. Step 3 resolves the data page's
    gPA through the host ECPT again.
    """

    name = "ecpt-nested"

    def __init__(
        self,
        guest_ecpt: ElasticCuckooPageTables,
        host_ecpt: ElasticCuckooPageTables,
        vm: VM,
        memsys: MemorySubsystem,
    ):
        super().__init__(memsys)
        self.guest_ecpt = guest_ecpt
        self.host_ecpt = host_ecpt
        self.vm = vm

    def batch_spec(self) -> Optional[BatchSpec]:
        return BatchSpec(kind="ecpt-nested", ecpt=self.guest_ecpt,
                         host_ecpt=self.host_ecpt, vm=self.vm)

    def _host_probe(self, gpa: int, rec: WalkRecorder, tag: str,
                    critical: bool) -> Optional[int]:
        """Probe the host ECPT for a gPA.

        When ``critical`` the hitting way's access is charged to latency;
        the rest (and everything on non-critical paths) are background
        accesses occupying bandwidth and cache capacity only.
        """
        if critical:
            _probe_step(self.host_ecpt, gpa, rec, tag)
        else:
            for addr, size, vpn in self.host_ecpt.candidate_probes(gpa):
                rec.memsys.caches.probe(addr)
        hit = self.host_ecpt.translate(gpa)
        return hit[0] if hit else None

    def translate(self, gva: int) -> WalkResult:
        rec = WalkRecorder(self.memsys)
        rec.charge(2 * HASH_CYCLES)

        # Which guest candidate will hit determines the critical path; the
        # other candidates' host resolutions and fetches run in parallel.
        guest_hit = self.guest_ecpt.translate(gva)

        # Step 1: host-resolve every guest candidate's location (up to
        # ways x sizes squared probes in flight).
        g_hit_addr = None
        if guest_hit is not None:
            for size, table in self.guest_ecpt.tables.items():
                found = table.lookup(gva >> int(size))
                if found is not None:
                    g_hit_addr = found[0]
                    break
        resolved: List[Tuple[int, int]] = []
        for g_addr, g_size, g_vpn in self.guest_ecpt.candidate_probes(gva):
            critical = g_hit_addr is not None and (g_addr >> 6) == (g_hit_addr >> 6)
            h_addr = self._host_probe(g_addr, rec, "h-ecpt", critical)
            if h_addr is not None:
                resolved.append((g_addr, h_addr))

        if guest_hit is None:
            return self.record(WalkResult(gva, rec.finish(), rec.refs, None))
        gpa, size = guest_hit

        # Step 2: fetch the guest candidates; the hit one is critical.
        for g_addr, h_addr in resolved:
            if g_hit_addr is not None and (g_addr >> 6) == (g_hit_addr >> 6):
                rec.fetch(h_addr, "g-ecpt")
            else:
                rec.memsys.caches.probe(h_addr)

        # Step 3: host-resolve the data page (critical).
        rec.charge(HASH_CYCLES)
        pa = self._host_probe(gpa, rec, "hd-ecpt", critical=True)
        return self.record(WalkResult(gva, rec.finish(), rec.refs, pa, size))
