"""Walker framework shared by every translation design.

A *walker* turns one virtual address into a physical address, charging
every PTE fetch through a :class:`MemorySubsystem` (the page-table side of
the cache hierarchy plus the MMU caches of Table 3). Sequential fetches
add latency; parallel probes within one group cost the slowest member
(hash-based designs and DMT's multi-size probes rely on this, §4.4).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.arch import PageSize
from repro.hw.cache import CacheHierarchy
from repro.hw.config import MachineConfig
from repro.hw.pwc import NestedPWC, PageWalkCache
from repro.obs import metrics


@dataclass
class MemRef:
    """One memory reference made during a translation."""

    addr: int
    tag: str          # e.g. "L1", "gL2", "hL4", "gPTE" — figure 16 labels
    latency: int
    hit_level: str    # cache level that served it ("L1D"/"L2"/"LLC"/"MEM")
    group: int = -1   # parallel probes share a group id


@dataclass
class WalkResult:
    """Outcome of translating one address."""

    va: int
    cycles: int
    refs: List[MemRef]
    pa: Optional[int] = None
    page_size: PageSize = PageSize.SIZE_4K
    fallback: bool = False   # DMT register miss -> x86 walker handled it

    @property
    def sequential_steps(self) -> int:
        """Number of serialized memory accesses (parallel groups count once)."""
        seen: Dict[int, None] = {}
        steps = 0
        for ref in self.refs:
            if ref.group >= 0:
                if ref.group not in seen:
                    seen[ref.group] = None
                    steps += 1
            else:
                steps += 1
        return steps


def pwc_accept_rates(pwc_config, ws_bytes: int, paper_ws_bytes: int):
    """Hit-acceptance rates restoring paper-scale PWC hit rates.

    PWC level *i* (top first) holds ``n_i`` entries each covering
    ``c_i`` bytes of VA (512 GB / 1 GB / 2 MB for a 3-level PWC over a
    4-level tree). Against a working set ``ws``, its raw hit rate is
    roughly ``min(1, n*c/ws)``; scaled-down working sets inflate this, so
    hits are accepted at the ratio of paper-scale to simulated-scale hit
    rates (DESIGN.md §5).
    """
    rates = []
    nlevels = len(pwc_config.entries_per_level)
    for i, entries in enumerate(pwc_config.entries_per_level):
        coverage = 1 << (12 + 9 * (nlevels - i))   # bytes per entry
        paper_hit = min(1.0, entries * coverage / paper_ws_bytes)
        sim_hit = min(1.0, entries * coverage / ws_bytes)
        rates.append(paper_hit / sim_hit if sim_hit else 1.0)
    return rates


class MemorySubsystem:
    """Page-table-side memory system: PTE caches + PWC + nested PWC."""

    def __init__(self, machine: MachineConfig, levels: int = 4,
                 record_refs: bool = True,
                 ws_bytes: Optional[int] = None,
                 paper_ws_bytes: Optional[int] = None):
        self.machine = machine
        self.caches = CacheHierarchy.pte_side(machine)
        pwc_rates = npwc_rate = None
        if ws_bytes and paper_ws_bytes and ws_bytes < paper_ws_bytes:
            pwc_rates = pwc_accept_rates(machine.pwc, ws_bytes, paper_ws_bytes)
            npwc_rate = ws_bytes / paper_ws_bytes
        self.pwc = PageWalkCache(machine.pwc, top_level=levels,
                                 accept_rates=pwc_rates, scope="pwc.host")
        self.guest_pwc = PageWalkCache(machine.pwc, top_level=levels,
                                       accept_rates=pwc_rates,
                                       scope="pwc.guest")
        self.nested_pwc = NestedPWC(
            machine.nested_pwc,
            accept_rate=npwc_rate if npwc_rate is not None else 1.0,
        )
        self.pwc_latency = machine.pwc.latency
        #: When False, walkers skip building per-reference MemRef lists
        #: (bulk simulation mode; Figure 16 turns it back on).
        self.record_refs = record_refs

    def flush(self) -> None:
        self.caches.flush()
        self.pwc.flush()
        self.guest_pwc.flush()
        self.nested_pwc.flush()


class WalkRecorder:
    """Accumulates the references and latency of one translation."""

    def __init__(self, memsys: MemorySubsystem):
        self.memsys = memsys
        self.refs: List[MemRef] = []
        self.cycles = 0
        self.ref_count = 0
        self._record = memsys.record_refs
        self._open_group: int = -1
        self._group_max = 0

    def fetch(self, addr: int, tag: str) -> MemRef:
        """One sequential memory reference."""
        self._close_group()
        result = self.memsys.caches.access(addr)
        self.ref_count += 1
        self.cycles += result.latency
        if not self._record:
            return None
        ref = MemRef(addr, tag, result.latency, result.level)
        self.refs.append(ref)
        return ref

    def fetch_grouped(self, addr: int, tag: str, group: int) -> MemRef:
        """A reference that may run in parallel with same-group references."""
        if group != self._open_group:
            self._close_group()
            self._open_group = group
        result = self.memsys.caches.access(addr)
        self.ref_count += 1
        if result.latency > self._group_max:
            self._group_max = result.latency
        if not self._record:
            return None
        ref = MemRef(addr, tag, result.latency, result.level, group=group)
        self.refs.append(ref)
        return ref

    def charge(self, cycles: int) -> None:
        """Non-memory latency (hash computation, PWC probe, ...)."""
        self._close_group()
        self.cycles += cycles

    def finish(self) -> int:
        self._close_group()
        return self.cycles

    def _close_group(self) -> None:
        if self._open_group >= 0:
            self.cycles += self._group_max
            self._open_group = -1
            self._group_max = 0


@dataclass
class BatchSpec:
    """A walker's geometry, exposed for the batched replay engine.

    :mod:`repro.sim.walk_vec` replays whole miss streams without calling
    ``translate`` per address; to do that it needs the structures a
    walker consults (page tables, the VM for host-dimension resolution,
    or the DMT fetch attempt plus its radix fallback). A walker without
    a batched path returns ``None`` from :meth:`Walker.batch_spec` and
    the engine transparently falls back to the scalar loop.

    ``kind`` selects the planner: ``"radix-native"`` (one-dimensional
    walk over ``page_table``), ``"radix-nested"`` (two-dimensional walk
    over ``guest_pt`` with host resolution through ``vm``), ``"dmt"``
    (register attempt via ``attempt``/``fetcher`` with ``fallback``
    handling register misses), ``"ecpt-native"``/``"ecpt-nested"``
    (hashed-bucket probing over ``ecpt``/``host_ecpt`` with the live
    Cuckoo Walk Cache), ``"fpt-native"``/``"fpt-nested"`` (flattened
    two-level plans over ``fpt``/``host_fpt``), ``"agile"`` (shadow
    upper levels over ``spt`` + nested leaf through ``vm``), or
    ``"asap-native"``/``"asap-nested"`` (prefetch cost model wrapped
    around the ``inner`` radix walker's plan).
    """

    kind: str
    page_table: object = None       # radix-native: the table walked
    guest_pt: object = None         # radix-nested: guest page table
    vm: object = None               # radix-nested: VM/adapter (gpa_to_hpa, ept)
    attempt: Optional[Callable] = None   # dmt: (va, fetch_cb) -> FetchResult
    fetcher: object = None          # dmt: the DMTFetcher (counter fidelity)
    fallback: object = None         # dmt: Walker covering register misses
    ecpt: object = None             # ecpt-*: guest/native cuckoo tables
    host_ecpt: object = None        # ecpt-nested: host cuckoo tables
    fpt: object = None              # fpt-*: guest/native flattened table
    host_fpt: object = None         # fpt-nested: host flattened table
    probe_huge: bool = False        # fpt-*: parallel 2M slot probing
    spt: object = None              # agile: the shadow page table
    inner: object = None            # asap-*: the wrapped radix walker
    #: Extra walkers whose walks/cycles counters mirror this walker's
    #: (ShadowWalker records through its inner native walker too).
    extra_walkers: Tuple = field(default_factory=tuple)


class Walker(abc.ABC):
    """A translation design: VA in, WalkResult out."""

    #: Short display name used by benches and reports.
    name: str = "walker"

    def __init__(self, memsys: MemorySubsystem):
        self.memsys = memsys
        # Live walk counters, registered as walker.<name>.* with the
        # metrics registry; the walks/total_cycles/fallbacks attributes
        # stay read/write through the compatibility properties below
        # (the batched engine assigns them in bulk).
        scope = f"walker.{metrics.slug(self.name)}"
        self._walks = metrics.counter(f"{scope}.walks")
        self._total_cycles = metrics.counter(f"{scope}.cycles")
        self._fallbacks = metrics.counter(f"{scope}.fallbacks")

    @property
    def walks(self) -> int:
        return self._walks.value

    @walks.setter
    def walks(self, value: int) -> None:
        self._walks.value = value

    @property
    def total_cycles(self) -> int:
        return self._total_cycles.value

    @total_cycles.setter
    def total_cycles(self, value: int) -> None:
        self._total_cycles.value = value

    @property
    def fallbacks(self) -> int:
        return self._fallbacks.value

    @fallbacks.setter
    def fallbacks(self, value: int) -> None:
        self._fallbacks.value = value

    @abc.abstractmethod
    def translate(self, va: int) -> WalkResult:
        """Translate one address, charging latency through ``memsys``."""

    def batch_spec(self) -> Optional[BatchSpec]:
        """Geometry for the batched replay engine; None = scalar only."""
        return None

    def record(self, result: WalkResult) -> WalkResult:
        self._walks.value += 1
        self._total_cycles.value += result.cycles
        if result.fallback:
            self._fallbacks.value += 1
        return result

    @property
    def mean_latency(self) -> float:
        return self.total_cycles / self.walks if self.walks else 0.0

    def reset_stats(self) -> None:
        self._walks.value = 0
        self._total_cycles.value = 0
        self._fallbacks.value = 0
