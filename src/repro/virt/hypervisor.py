"""Hypervisor and VM model (KVM-style hardware-assisted virtualization).

A :class:`VM` owns a guest-physical memory domain with its own guest
:class:`~repro.kernel.kernel.Kernel` running inside it. The hypervisor
maintains a *host page table* per guest (the EPT/nPT of §2.1.2): a radix
table over host physical memory mapping guest frame numbers to host frames.
Per §4.5, the hypervisor represents the whole guest physical space as a
single host VMA, which is exactly the granularity host-side DMT maps.

Guest-physical pages are backed lazily: the first touch of an unbacked
guest frame raises an EPT violation, which the hypervisor services by
allocating a host frame (counted as a VM exit).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis import sanitizer
from repro.arch import PAGE_SHIFT, PAGE_SIZE, PageSize
from repro.kernel.kernel import Kernel
from repro.kernel.page_table import RadixPageTable, TablePlacementPolicy
from repro.kernel.vma import VMA
from repro.mem.physmem import PhysicalMemory


@dataclass
class VMExitStats:
    """VM-exit accounting, by reason."""

    ept_violations: int = 0
    hypercalls: int = 0
    shadow_syncs: int = 0
    external: int = 0

    @property
    def total(self) -> int:
        return self.ept_violations + self.hypercalls + self.shadow_syncs + self.external


class EPTViolation(Exception):
    """Guest-physical access with no host backing and no handler."""


class VM:
    """One guest virtual machine."""

    _ids = itertools.count(1)

    def __init__(
        self,
        hypervisor: "Hypervisor",
        memory_bytes: int,
        thp_enabled: bool = False,
        levels: int = 4,
        ept_placement: Optional[TablePlacementPolicy] = None,
        name: Optional[str] = None,
    ):
        self.vm_id = next(VM._ids)
        self.name = name or f"vm{self.vm_id}"
        self.hypervisor = hypervisor
        self.memory_bytes = memory_bytes
        self.exits = VMExitStats()
        # Guest-physical domain with its own allocator + word store.
        self.guest_memory = PhysicalMemory(memory_bytes)
        self.guest_kernel = Kernel(
            memory=self.guest_memory, levels=levels,
            thp_enabled=thp_enabled, name=f"{self.name}-guest",
        )
        # Host page table for this guest (EPT): "virtual" addresses are gPAs.
        self.ept = RadixPageTable(
            hypervisor.host_memory, levels=levels,
            asid=0x1000 + self.vm_id, placement=ept_placement,
        )
        # Reverse of the EPT at 4 KB granularity: host frame -> guest frame.
        # Lets a reader holding only a host-physical address find the guest
        # word store that owns the bytes (guest memory is a separate domain).
        self._reverse: Dict[int, int] = {}
        # The single host VMA standing for guest physical memory (§4.5).
        self.backing_vma: VMA = hypervisor.host_process_for(self).addr_space.mmap(
            memory_bytes, name=f"{self.name}-guest-physmem"
        )

    def gpa_space_vma(self) -> VMA:
        """A VMA describing the whole guest-physical space in gPA
        coordinates — what host-side DMT maps to a host TEA (§4.5)."""
        return VMA(0, self.memory_bytes, name=f"{self.name}-gpa-space")

    # ------------------------------------------------------------------ #
    # Guest-physical <-> host-physical
    # ------------------------------------------------------------------ #

    def ensure_backed(self, gfn: int) -> int:
        """Host frame backing guest frame ``gfn``; faults one in if needed."""
        translated = self.ept.translate(gfn << PAGE_SHIFT)
        if translated is not None:
            return translated[0] >> PAGE_SHIFT
        self.exits.ept_violations += 1
        hfn = self.hypervisor.host_memory.allocator.alloc_pages(0, movable=True)
        self.ept.map(gfn << PAGE_SHIFT, hfn, PageSize.SIZE_4K)
        self._reverse[hfn] = gfn
        return hfn

    def gpa_to_hpa(self, gpa: int) -> int:
        hfn = self.ensure_backed(gpa >> PAGE_SHIFT)
        return (hfn << PAGE_SHIFT) | (gpa & (PAGE_SIZE - 1))

    def back_range(self, gpa_start: int, nbytes: int,
                   page_size: PageSize = PageSize.SIZE_4K) -> None:
        """Eagerly back a guest-physical range (pre-touch at VM setup).

        With ``page_size == SIZE_2M`` the host backs the range with 2 MB EPT
        leaves — host THP for guest memory.
        """
        gpa = gpa_start
        end = gpa_start + nbytes
        host_alloc = self.hypervisor.host_memory.allocator
        while gpa < end:
            if page_size == PageSize.SIZE_2M and gpa % page_size.bytes == 0 \
                    and gpa + page_size.bytes <= end \
                    and self.ept.table_frame(gpa, 1) is None:
                if self.ept.lookup(gpa) is None:
                    hfn = host_alloc.alloc_pages(9, movable=True)
                    self.ept.map(gpa, hfn, PageSize.SIZE_2M)
                    gfn = gpa >> PAGE_SHIFT
                    for i in range(512):
                        self._reverse[hfn + i] = gfn + i
                gpa += page_size.bytes
            else:
                if self.ept.lookup(gpa) is None:
                    hfn = host_alloc.alloc_pages(0, movable=True)
                    self.ept.map(gpa, hfn, PageSize.SIZE_4K)
                    self._reverse[hfn] = gpa >> PAGE_SHIFT
                gpa += PAGE_SIZE

    # dmtlint-domain: return=gpa -- takes host frames, returns the base gPA
    def map_host_frames(self, host_frame: int, npages: int) -> int:
        """Map ``npages`` host frames into fresh guest-physical space.

        This is the ``vm_insert_pages`` path used by ``KVM_HC_ALLOC_TEA``
        (§4.6.2): the returned gPA region is backed by the given
        host-contiguous frames, so the guest can write PTEs into its TEAs
        without further VM exits. Returns the base gPA.
        """
        base_gfn = self.guest_memory.allocator.alloc_contig(npages, movable=False)
        if sanitizer.active():
            # §4.5.2: a host frame backing one guest's TEAs must never be
            # inserted into a second guest of the same host domain.
            sanitizer.claim_frames(id(self.hypervisor.host_memory),
                                   host_frame, npages, self.vm_id)
        for i in range(npages):
            gpa = (base_gfn + i) << PAGE_SHIFT
            if self.ept.lookup(gpa) is not None:
                old = self.ept.unmap(gpa)
                self._reverse.pop(old, None)
                if old is not None and sanitizer.active():
                    sanitizer.release_frames(id(self.hypervisor.host_memory),
                                             old, 1)
            self.ept.map(gpa, host_frame + i, PageSize.SIZE_4K)
            self._reverse[host_frame + i] = base_gfn + i
        return base_gfn << PAGE_SHIFT

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def reverse_lookup(self, host_frame: int) -> Optional[int]:
        """Guest frame backed by ``host_frame``, if any."""
        return self._reverse.get(host_frame)

    def backed_pages(self) -> int:
        return self.ept.mapped_pages


class Hypervisor:
    """KVM-like hypervisor living inside a host kernel."""

    def __init__(self, host_kernel: Kernel):
        self.host_kernel = host_kernel
        self.vms: Dict[int, VM] = {}
        self._host_procs: Dict[int, object] = {}

    @property
    def host_memory(self) -> PhysicalMemory:
        return self.host_kernel.memory

    def host_process_for(self, vm: VM):
        """The host process (QEMU analogue) owning a VM's backing VMA."""
        proc = self._host_procs.get(vm.vm_id)
        if proc is None:
            proc = self.host_kernel.create_process(name=f"qemu-{vm.name}")
            self._host_procs[vm.vm_id] = proc
        return proc

    def create_vm(
        self,
        memory_bytes: int,
        thp_enabled: bool = False,
        levels: int = 4,
        ept_placement: Optional[TablePlacementPolicy] = None,
        name: Optional[str] = None,
    ) -> VM:
        vm = VM(
            self, memory_bytes, thp_enabled=thp_enabled, levels=levels,
            ept_placement=ept_placement, name=name,
        )
        self.vms[vm.vm_id] = vm
        return vm

    def destroy_vm(self, vm: VM) -> None:
        self.vms.pop(vm.vm_id, None)
