"""Shadow paging (§2.1.2, §2.1.3).

The hypervisor maintains a *shadow page table* (sPT) mapping guest virtual
addresses straight to host physical addresses, combining the guest page
table with the gPA->hPA mapping. Translation then costs a native-style
walk, but every guest PTE update must be intercepted and synchronized —
each such write is a VM exit, which is where shadow paging's overhead
comes from. This model counts those exits via the guest page table's write
hook and rebuilds the sPT on demand.

For nested virtualization the same class builds the L2PA->L0PA shadow
table of Figure 3 by composing the two hypervisors' tables.
"""

from __future__ import annotations


from repro.arch import PAGE_SHIFT, PAGE_SIZE, PageSize
from repro.kernel.page_table import RadixPageTable
from repro.kernel.process import Process
from repro.virt.hypervisor import VM


class ShadowPager:
    """Maintains an sPT for one guest process."""

    def __init__(self, vm: VM, guest_process: Process):
        self.vm = vm
        self.guest_process = guest_process
        self.spt = RadixPageTable(
            vm.hypervisor.host_memory,
            levels=guest_process.page_table.levels,
            asid=0x2000 + guest_process.asid,
        )
        self._prior_hook = guest_process.page_table.write_hook
        guest_process.page_table.write_hook = self._on_guest_pte_write

    def _on_guest_pte_write(self, pte_addr: int, value: int) -> None:
        # Guest page tables are write-protected under shadow paging: each
        # guest PTE update traps to the hypervisor for sPT synchronization.
        self.vm.exits.shadow_syncs += 1
        if self._prior_hook is not None:
            self._prior_hook(pte_addr, value)

    def detach(self) -> None:
        self.guest_process.page_table.write_hook = self._prior_hook

    # ------------------------------------------------------------------ #
    # Synchronization
    # ------------------------------------------------------------------ #

    def sync(self) -> int:
        """Rebuild the sPT from the current guest PT + EPT state.

        Returns the number of shadow entries installed. A real hypervisor
        does this incrementally on each trapped write; rebuilding before
        simulation gives an identical sPT for the walker.
        """
        installed = 0
        guest_pt = self.guest_process.page_table
        for base_va, size in sorted(guest_pt._mapped_pages.items()):
            installed += self._shadow_one(base_va, size)
        return installed

    def _shadow_one(self, va: int, size: PageSize) -> int:
        translated = self.guest_process.page_table.translate(va)
        if translated is None:
            return 0
        gpa = translated[0]
        if size == PageSize.SIZE_4K:
            hpa = self.vm.gpa_to_hpa(gpa)
            return int(self._install(va, hpa, PageSize.SIZE_4K))
        # Huge guest page: shadow it hugely only if the host backing is a
        # matching aligned huge EPT leaf; otherwise fracture into 4 KB.
        ept_leaf = self.vm.ept.lookup(gpa)
        if (
            ept_leaf is not None
            and ept_leaf[2] == size
            and gpa % size.bytes == 0
        ):
            return int(self._install(va, self.vm.gpa_to_hpa(gpa), size))
        count = 0
        for offset in range(0, size.bytes, PAGE_SIZE):
            hpa = self.vm.gpa_to_hpa(gpa + offset)
            count += int(self._install(va + offset, hpa, PageSize.SIZE_4K))
        return count

    def _install(self, va: int, hpa: int, size: PageSize) -> bool:
        """Install one shadow entry; returns False if already correct."""
        existing = self.spt.lookup(va)
        if existing is not None:
            if existing[2] == size and (existing[1] >> PAGE_SHIFT) == hpa >> PAGE_SHIFT:
                return False
            self.spt.unmap(va)
        self.spt.map(va, hpa >> PAGE_SHIFT, size)
        return True


class NestedShadowPager:
    """The L0-maintained sPT of nested virtualization (Figure 3).

    Maps L2-physical addresses to L0-physical addresses by composing the
    L1 hypervisor's table for L2 (L2PA -> L1PA) with the L0 hypervisor's
    table for L1 (L1PA -> L0PA). L1-side page-table updates must be
    intercepted by L0, so writes to the L2 VM's EPT count as L0 exits.
    """

    def __init__(self, l1_vm: VM, l2_vm: VM):
        self.l1_vm = l1_vm  # L0's view of L1
        self.l2_vm = l2_vm  # L1's view of L2 (its ept maps L2PA->L1PA)
        self.spt = RadixPageTable(
            l1_vm.hypervisor.host_memory,
            levels=l2_vm.ept.levels,
            asid=0x3000 + l2_vm.vm_id,
        )
        self._prior_hook = l2_vm.ept.write_hook
        l2_vm.ept.write_hook = self._on_l1_table_write

    def _on_l1_table_write(self, pte_addr: int, value: int) -> None:
        self.l1_vm.exits.shadow_syncs += 1
        if self._prior_hook is not None:
            self._prior_hook(pte_addr, value)

    def detach(self) -> None:
        self.l2_vm.ept.write_hook = self._prior_hook

    def sync(self) -> int:
        installed = 0
        for gpa_base, size in sorted(self.l2_vm.ept._mapped_pages.items()):
            l1pa = self.l2_vm.ept.translate(gpa_base)
            if l1pa is None:
                continue
            # fracture to 4 KB: L1->L0 backing is rarely contiguous at 2 MB
            for offset in range(0, size.bytes, PAGE_SIZE):
                l0pa = self.l1_vm.gpa_to_hpa(l1pa[0] + offset)
                if self.spt.lookup(gpa_base + offset) is None:
                    self.spt.map(gpa_base + offset, l0pa >> PAGE_SHIFT, PageSize.SIZE_4K)
                    installed += 1
        return installed
