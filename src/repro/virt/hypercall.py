"""Paravirtual hypercall transport and cost model.

pvDMT adds one hypercall, ``KVM_HC_ALLOC_TEA`` (§4.5.1): the guest passes
an array of requested gTEAs; the host allocates host-contiguous memory,
maps it into the guest, updates the read-only gTEA table and returns the
materialized mappings. The host may merge or split requests.

The latency constants reproduce §6.3's microbenchmark: the bare hypercall
(VM exit + KVM handler) costs 1.88 us single-level and 10.75 us nested;
TEA allocation time scales roughly linearly with size (13.27 / 23.73 /
48.07 ms for 50 / 100 / 200 MB TEAs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


KVM_HC_ALLOC_TEA = 0x1000_0001

#: Bare hypercall round-trip (VM exit + handler + resume), microseconds.
HYPERCALL_US_SINGLE = 1.88
#: Same, but cascaded through an intermediate hypervisor (§4.5.3).
HYPERCALL_US_NESTED = 10.75

#: Fitted linear model of TEA allocation time: base + per-MB slope.
#: 50 MB -> ~13 ms, 200 MB -> ~48 ms (single-level, §6.3).
TEA_ALLOC_BASE_MS = 1.8
TEA_ALLOC_MS_PER_MB = 0.232
#: Nested allocations pay an extra forwarding factor (L1 relays to L0).
TEA_ALLOC_NESTED_FACTOR = 1.13


@dataclass(frozen=True)
class TEARequest:
    """One requested gTEA: where the VMA lives and how many PTE pages it needs."""

    vma_base: int      # guest-virtual base of the VMA this TEA serves
    npages: int        # TEA size in 4 KB pages
    page_size_shift: int = 12  # page size whose leaf PTEs this TEA holds


@dataclass(frozen=True)
class GTEAEntry:
    """One row of the host-maintained gTEA table (Figure 13).

    The table records, per gTEA ID, the base *host* frame and size of the
    area. It is read-only to the guest: the DMT fetcher consults it, and
    any modification must go through the hypercall.
    """

    gtea_id: int
    host_base_frame: int
    npages: int
    gpa_base: int      # where the area is visible in guest-physical space
    vma_base: int
    page_size_shift: int = 12


@dataclass
class HypercallResult:
    entries: List[GTEAEntry]
    latency_us: float
    vm_exits: int = 1


def tea_alloc_latency_ms(nbytes: int, nested: bool = False) -> float:
    """Modelled wall-clock time for the host to allocate a TEA of ``nbytes``."""
    size_mb = nbytes / (1024 * 1024)
    latency = TEA_ALLOC_BASE_MS + TEA_ALLOC_MS_PER_MB * size_mb
    if nested:
        latency *= TEA_ALLOC_NESTED_FACTOR
    return latency


def hypercall_latency_us(nested: bool = False) -> float:
    return HYPERCALL_US_NESTED if nested else HYPERCALL_US_SINGLE
