"""Virtualization substrate: hypervisor, EPT, shadow paging, nesting, hypercalls."""

from repro.virt.hypercall import (
    GTEAEntry,
    HypercallResult,
    KVM_HC_ALLOC_TEA,
    TEARequest,
    hypercall_latency_us,
    tea_alloc_latency_ms,
)
from repro.virt.hypervisor import VM, EPTViolation, Hypervisor, VMExitStats
from repro.virt.nested import NestedSetup
from repro.virt.shadow import NestedShadowPager, ShadowPager

__all__ = [
    "GTEAEntry",
    "HypercallResult",
    "KVM_HC_ALLOC_TEA",
    "TEARequest",
    "hypercall_latency_us",
    "tea_alloc_latency_ms",
    "VM",
    "EPTViolation",
    "Hypervisor",
    "VMExitStats",
    "NestedSetup",
    "NestedShadowPager",
    "ShadowPager",
]
