"""Nested virtualization: an L1 hypervisor running inside an L0 VM (§2.1.3).

``NestedSetup`` wires the three layers of Figure 3 together:

* L0 — the bare-metal host kernel and its hypervisor;
* L1 — a VM on L0 whose guest kernel runs a second hypervisor;
* L2 — a VM created by the L1 hypervisor; its "host physical" memory is
  L1's guest-physical memory, which is itself virtualized by L0.

The baseline (vanilla nested KVM) translates L2VA -> L0PA with a 2D walk
over the L2 page table and an L0-maintained shadow table compressing
L1PT + L0PT (``NestedShadowPager``). pvDMT replaces all of that with three
direct PTE fetches (§3.2).
"""

from __future__ import annotations

from typing import Optional

from repro.kernel.kernel import Kernel
from repro.kernel.page_table import TablePlacementPolicy
from repro.virt.hypervisor import VM, Hypervisor
from repro.virt.shadow import NestedShadowPager


class NestedSetup:
    """L0 host -> L1 VM (running a hypervisor) -> L2 VM."""

    def __init__(
        self,
        host_kernel: Kernel,
        l1_bytes: int,
        l2_bytes: int,
        thp_enabled: bool = False,
        levels: int = 4,
        l1_ept_placement: Optional[TablePlacementPolicy] = None,
        l2_ept_placement: Optional[TablePlacementPolicy] = None,
    ):
        if l2_bytes > l1_bytes:
            raise ValueError("L2 memory cannot exceed L1 memory")
        self.host_kernel = host_kernel
        self.hv0 = Hypervisor(host_kernel)
        self.l1_vm = self.hv0.create_vm(
            l1_bytes, thp_enabled=thp_enabled, levels=levels,
            ept_placement=l1_ept_placement, name="L1",
        )
        # The L1 hypervisor runs *inside* the L1 guest kernel: its "host
        # physical memory" is L1's guest-physical domain.
        self.hv1 = Hypervisor(self.l1_vm.guest_kernel)
        self.l2_vm = self.hv1.create_vm(
            l2_bytes, thp_enabled=thp_enabled, levels=levels,
            ept_placement=l2_ept_placement, name="L2",
        )
        self.shadow: Optional[NestedShadowPager] = None

    @property
    def l2_kernel(self) -> Kernel:
        return self.l2_vm.guest_kernel

    def enable_shadow(self) -> NestedShadowPager:
        """Attach the baseline's L0-maintained L2PA -> L0PA shadow table."""
        if self.shadow is None:
            self.shadow = NestedShadowPager(self.l1_vm, self.l2_vm)
        return self.shadow

    # ------------------------------------------------------------------ #
    # Address composition helpers
    # ------------------------------------------------------------------ #

    def l2pa_to_l1pa(self, l2pa: int) -> int:
        return self.l2_vm.gpa_to_hpa(l2pa)

    def l1pa_to_l0pa(self, l1pa: int) -> int:
        return self.l1_vm.gpa_to_hpa(l1pa)

    def l2pa_to_l0pa(self, l2pa: int) -> int:
        """Full L2-physical -> machine-physical composition."""
        return self.l1pa_to_l0pa(self.l2pa_to_l1pa(l2pa))

    def total_exits(self) -> int:
        return self.l1_vm.exits.total + self.l2_vm.exits.total
