#!/usr/bin/env python
"""CI smoke for resumable sweep jobs (ISSUE 9 acceptance).

Runs one uninterrupted reference sweep in-process, then launches the
same grid as a durable job in a subprocess and injects a failure:

* ``--kill-mode job``    — SIGKILL the whole scheduler process after at
  least one shard record lands in the journal, then resume with
  ``python -m repro sweep --resume`` and require ≥1 journal-served
  group (``meta.job.resumed_groups``);
* ``--kill-mode worker`` — SIGKILL one *pool worker* child instead; the
  scheduler must survive, retry the dead shard(s) with backoff
  (``meta.job.retried_shards`` ≥ 1 via the journal's retry records),
  and finish on its own.

Either way the final document's cells must be identical to the
reference run's for every (env, workload, design, thp) key, modulo the
wall-time/pid/RSS telemetry in ``VOLATILE_CELL_KEYS``. Exits non-zero
on any violation.

Usage::

    python scripts/jobs_resume_smoke.py --kill-mode job --workdir /tmp/x
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.sim.jobs import read_journal, stable_cells  # noqa: E402
from repro.sim.jobs.journal import journal_path  # noqa: E402
from repro.sim.sweep import run_sweep  # noqa: E402

GRID = ["--env", "native", "--workloads", "GUPS,Redis,BTree",
        "--designs", "vanilla,dmt", "--scale", "2048", "--nrefs", "8000"]
GRID_KWARGS = dict(envs=["native"], workloads=["GUPS", "Redis", "BTree"],
                   designs=["vanilla", "dmt"], scale=2048, nrefs=8000)


def wait_for_shard_record(journal: str, deadline_seconds: float = 120.0,
                          count: int = 1) -> None:
    deadline = time.time() + deadline_seconds
    while time.time() < deadline:
        if os.path.exists(journal):
            records, _ = read_journal(journal)
            if sum(1 for r in records if r.get("type") == "shard") >= count:
                return
        time.sleep(0.05)
    raise SystemExit(f"no shard record appeared in {journal} within "
                     f"{deadline_seconds}s")


def pool_worker_pids(parent_pid: int) -> list:
    """The direct children of ``parent_pid`` (Linux /proc)."""
    pids = []
    for task in os.listdir(f"/proc/{parent_pid}/task"):
        children = f"/proc/{parent_pid}/task/{task}/children"
        try:
            with open(children, encoding="ascii") as handle:
                pids.extend(int(pid) for pid in handle.read().split())
        except OSError:
            continue
    return pids


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--kill-mode", choices=("job", "worker"),
                        required=True)
    parser.add_argument("--workdir", required=True)
    args = parser.parse_args()

    os.makedirs(args.workdir, exist_ok=True)
    job_dir = os.path.join(args.workdir, "job")
    out_path = os.path.join(args.workdir, "final.json")
    # Separate artifact caches: the job leg runs stage 0/1 cold, which
    # keeps the kill window wide; the resumed process still shares the
    # job's cache, so re-run shards serve stage 1 from disk. Results
    # are bit-identical either way.
    ref_artifacts = os.path.join(args.workdir, "artifacts-ref")
    job_artifacts = os.path.join(args.workdir, "artifacts-job")

    print("reference: uninterrupted in-process sweep")
    reference = stable_cells(run_sweep(
        workers=2, artifact_dir=ref_artifacts, **GRID_KWARGS)["cells"])

    argv = [sys.executable, "-m", "repro", "sweep", "--resume", job_dir,
            "--workers", "2", "--artifact-cache", job_artifacts,
            "--out", out_path] + GRID
    src = os.path.abspath(os.path.join(os.path.dirname(__file__), "..",
                                       "src"))
    env = dict(os.environ, PYTHONPATH=src)
    print(f"launching job subprocess ({args.kill_mode} leg)")
    # Own session so the job-kill leg can SIGKILL the whole process
    # group: killing only the scheduler would orphan its pool workers,
    # which then sleep forever on the call-queue pipe (each worker
    # holds a write end, so no EOF ever arrives).
    proc = subprocess.Popen(argv, env=env, start_new_session=True)
    journal = journal_path(job_dir)

    if args.kill_mode == "job":
        wait_for_shard_record(journal)
        if proc.poll() is not None:
            raise SystemExit("job finished before it could be killed; "
                             "grow the grid")
        print(f"SIGKILLing scheduler process group {proc.pid}")
        os.killpg(proc.pid, signal.SIGKILL)
        proc.wait()
        records, _ = read_journal(journal)
        shards_before = [r["shard_id"] for r in records
                         if r.get("type") == "shard"]
        print(f"journaled before kill: {shards_before}")
        if os.path.exists(out_path):
            os.remove(out_path)  # the kill must not have written it
        print("resuming")
        code = subprocess.call(argv, env=env)
        if code != 0:
            raise SystemExit(f"resume exited {code}")
    else:
        # Kill one pool worker: the scheduler itself must survive,
        # retry the shard(s) the broken pool dropped, and finish.
        deadline = time.time() + 120
        victims = []
        while time.time() < deadline and not victims:
            victims = pool_worker_pids(proc.pid)
            time.sleep(0.05)
        if not victims:
            raise SystemExit("no pool worker appeared to kill")
        print(f"SIGKILLing pool worker pid {victims[0]}")
        try:
            os.kill(victims[0], signal.SIGKILL)
        except ProcessLookupError:
            raise SystemExit("pool worker exited before it could be "
                             "killed; shrink the grid?")
        code = proc.wait()
        if code != 0:
            raise SystemExit(f"scheduler exited {code} after worker kill")
        records, _ = read_journal(journal)
        retries = [r for r in records if r.get("type") == "retry"]
        print(f"retry records: {[r['shard_id'] for r in retries]}")
        if not retries:
            raise SystemExit("worker kill produced no retry record")

    with open(out_path, encoding="utf-8") as handle:
        document = json.load(handle)
    meta = document["meta"]
    job = meta["job"]
    print(f"job {job['job_id']}: resumed_groups={job['resumed_groups']} "
          f"retried_shards={job['retried_shards']} "
          f"failed={job['failed_shards']}")
    if meta.get("partial"):
        raise SystemExit(f"final document is partial: "
                         f"{meta.get('missing_groups')}")
    if job["failed_shards"]:
        raise SystemExit(f"shards failed permanently: "
                         f"{job['failed_shards']}")
    if args.kill_mode == "job" and job["resumed_groups"] < 1:
        raise SystemExit("resume re-ran everything; nothing came from "
                         "the journal")
    if args.kill_mode == "worker" and job["retried_shards"] < 1:
        raise SystemExit("no shard retry was recorded in the document")
    final = stable_cells(document["cells"])
    if final != reference:
        raise SystemExit("resumed document diverged from the "
                         "uninterrupted reference run")
    print(f"OK: {len(final)} cells identical to the reference run")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
